package core

import (
	"reflect"
	"testing"

	"repro/internal/causality"
	"repro/internal/sharegraph"
)

// TestNodeCheckpointRoundtrip pins state transfer at the node level:
// snapshot a replica mid-run — with a buffered undeliverable update —
// install into a fresh node, and require identical state: timestamp,
// registers, pending set, and identical behaviour on the next input.
func TestNodeCheckpointRoundtrip(t *testing.T) {
	g := sharegraph.Fig5Example()
	p, err := NewEdgeIndexed(g)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	tracker := causality.NewTracker(g)

	write := func(r sharegraph.ReplicaID, x sharegraph.Register, v Value) []Envelope {
		t.Helper()
		id := tracker.OnIssue(r, x)
		envs, err := CollectWrite(nodes[r], x, v, id)
		if err != nil {
			t.Fatal(err)
		}
		return envs
	}
	deliverTo := func(envs []Envelope, to sharegraph.ReplicaID) []Applied {
		t.Helper()
		for _, e := range envs {
			if e.To == to {
				applied, _ := CollectMessage(nodes[to], e)
				return applied
			}
		}
		t.Fatalf("no envelope for %d", to)
		return nil
	}

	// Stage the Theorem 8 chain far enough that replica 2 holds a
	// buffered update: ux arrives before its transitive dependency u0.
	u0 := write(3, "z", 10)
	u1 := write(3, "w", 11)
	deliverTo(u1, 0)
	uy := write(0, "y", 12)
	deliverTo(uy, 1)
	ux := write(1, "x", 13)
	deliverTo(ux, 2) // buffered: u0 not yet applied at 2

	victim := nodes[2].(Snapshotter)
	if victim.PendingCount() != 1 {
		t.Fatalf("setup: pending at replica 2 = %d, want 1", victim.PendingCount())
	}
	ck := victim.Snapshot()

	fresh, err := p.NewNodes()
	if err != nil {
		t.Fatal(err)
	}
	clone := fresh[2].(Snapshotter)
	applied, err := clone.Install(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Fatalf("install applied %d updates; buffered updates must stay buffered", len(applied))
	}
	if clone.PendingCount() != 1 {
		t.Fatalf("installed pending = %d, want 1", clone.PendingCount())
	}
	origVec := nodes[2].(*edgeNode).Timestamp()
	cloneVec := clone.(*edgeNode).Timestamp()
	if !origVec.Equal(cloneVec) {
		t.Fatalf("timestamps diverge: %v vs %v", origVec, cloneVec)
	}

	// Same next input → same behaviour: delivering u0 unblocks ux on
	// both the original and the restored clone.
	bothApplied := func(n Node) []Applied {
		for _, e := range u0 {
			if e.To == 2 {
				applied, _ := CollectMessage(n, e)
				return append([]Applied(nil), applied...)
			}
		}
		t.Fatal("u0 has no envelope for replica 2")
		return nil
	}
	a1 := bothApplied(nodes[2])
	a2 := bothApplied(clone)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("post-restore applies diverge: %v vs %v", a1, a2)
	}
	if len(a1) != 2 {
		t.Fatalf("delivering u0 should apply u0 then ux, got %v", a1)
	}
	v1, _ := nodes[2].Read("x")
	v2, _ := clone.Read("x")
	if v1 != v2 {
		t.Fatalf("register x diverges: %v vs %v", v1, v2)
	}

	// Shape mismatches are rejected, not corrupted.
	if _, err := clone.Install(&NodeCheckpoint{Replica: 0}); err == nil {
		t.Error("installing another replica's checkpoint should fail")
	}
}

// TestOracleCheckpointRestore pins the oracle side: export, advance,
// restore, and require rolled-back applied state plus a recomputed
// missing index that re-demands post-checkpoint updates.
func TestOracleCheckpointRestore(t *testing.T) {
	for _, mk := range []struct {
		name string
		n    func(*sharegraph.Graph) *causality.Tracker
	}{
		{"persistent", causality.NewTracker},
		{"flat", causality.NewFlatTracker},
	} {
		t.Run(mk.name, func(t *testing.T) {
			g := sharegraph.Ring(4)
			tr := mk.n(g)
			regs := g.Stores(0).Sorted()
			x := regs[0]
			holders := g.Holders(x)

			u1 := tr.OnIssue(0, x)
			for _, h := range holders {
				if h != 0 {
					tr.OnApply(h, u1)
				}
			}
			ck := tr.ExportCheckpoint(0)

			u2 := tr.OnIssue(0, x) // post-checkpoint issue at 0
			if !tr.Applied(0, u2) {
				t.Fatal("issue should apply locally")
			}
			if err := tr.RestoreCheckpoint(0, ck); err != nil {
				t.Fatal(err)
			}
			if !tr.Applied(0, u1) {
				t.Error("pre-checkpoint apply lost in restore")
			}
			if tr.Applied(0, u2) {
				t.Error("post-checkpoint apply survived restore")
			}
			// Replaying u2 must be accepted cleanly (it is missing again).
			tr.OnApply(0, u2)
			if !tr.Applied(0, u2) || !tr.Ok() {
				t.Fatalf("replay of rolled-back issue rejected: %v", tr.Violations())
			}
			// Cross-representation restores are refused.
			other := causality.NewFlatTracker(g)
			if mk.name == "flat" {
				other = causality.NewTracker(g)
			}
			other.OnIssue(0, x)
			if err := other.RestoreCheckpoint(0, ck); err == nil {
				t.Error("cross-representation restore should fail")
			}
			if err := tr.RestoreCheckpoint(1, ck); err == nil {
				t.Error("restoring at the wrong replica should fail")
			}
		})
	}
}
