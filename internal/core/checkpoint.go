package core

import (
	"fmt"

	"repro/internal/ingest"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// NodeCheckpoint is a self-contained snapshot of one replica's protocol
// state: register contents, the vector timestamp, and the buffered
// (received but not yet deliverable) updates re-encoded as envelopes.
// Together with the oracle's ReplicaCheckpoint it is everything a
// crashed replica needs to rejoin — the runtime-side retention log
// replays whatever happened after the snapshot.
//
// The checkpoint owns all of its memory (maps, vectors, encoded
// metadata); it stays valid however the node evolves afterwards, and
// one checkpoint may be installed any number of times.
type NodeCheckpoint struct {
	Replica sharegraph.ReplicaID
	Store   map[sharegraph.Register]Value
	Tau     timestamp.Vec
	Pending []Envelope
}

// Snapshotter is implemented by nodes that support crash/restart state
// transfer. The paper's edge-indexed nodes implement it; baselines that
// do not simply cannot be crashed in chaos runs.
type Snapshotter interface {
	Node
	// Snapshot captures the node's current state.
	Snapshot() *NodeCheckpoint
	// Install resets the node to a checkpoint previously taken from a
	// node of the same protocol and replica. Buffered updates are
	// re-filed through the normal ingest path; by protocol determinism
	// they stay buffered (they were undeliverable at snapshot time and
	// the restored τ is identical), but any applies that do occur are
	// returned so the runtime can report them to the oracle.
	Install(ck *NodeCheckpoint) ([]Applied, error)
}

var _ Snapshotter = (*edgeNode)(nil)

// Snapshot implements Snapshotter.
func (n *edgeNode) Snapshot() *NodeCheckpoint {
	ck := &NodeCheckpoint{
		Replica: n.id,
		Tau:     n.τ.Clone(),
		Store:   make(map[sharegraph.Register]Value, len(n.store)),
	}
	for x, v := range n.store {
		ck.Store[x] = v
	}
	collect := func(u pendingUpdate) {
		ck.Pending = append(ck.Pending, Envelope{
			From: u.from, To: n.id, Reg: u.reg, Val: u.val,
			Meta: timestamp.Encode(u.ts), OracleID: u.oracleID, MetaOnly: u.metaOnly,
		})
	}
	if n.naive {
		for _, u := range n.pending {
			collect(u)
		}
	} else {
		n.q.All(collect)
	}
	return ck
}

// Install implements Snapshotter.
func (n *edgeNode) Install(ck *NodeCheckpoint) ([]Applied, error) {
	if ck == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if ck.Replica != n.id {
		return nil, fmt.Errorf("core: checkpoint of replica %d installed at %d", ck.Replica, n.id)
	}
	if len(ck.Tau) != len(n.τ) {
		return nil, fmt.Errorf("core: checkpoint has %d timestamp entries, node tracks %d — different timestamp graphs",
			len(ck.Tau), len(n.τ))
	}
	copy(n.τ, ck.Tau)
	n.store = make(map[sharegraph.Register]Value, len(ck.Store))
	for x, v := range ck.Store {
		n.store[x] = v
	}
	n.pending = nil
	if !n.naive {
		n.q = ingest.NewSenderQueues[pendingUpdate](n.space.NumReplicas())
	}
	var out []Applied
	for _, env := range ck.Pending {
		// HandleMessage decodes Meta into a fresh vector, so the
		// checkpoint's buffers stay untouched and reusable.
		out = append(out, n.HandleMessage(env, DiscardSink{})...)
	}
	return out, nil
}
