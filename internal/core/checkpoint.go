package core

import (
	"fmt"

	"repro/internal/ingest"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// NodeCheckpoint is a self-contained snapshot of one replica's protocol
// state: register contents, the vector timestamp, and the buffered
// (received but not yet deliverable) updates re-encoded as envelopes.
// Together with the oracle's ReplicaCheckpoint it is everything a
// crashed replica needs to rejoin — the runtime-side retention log
// replays whatever happened after the snapshot.
//
// The checkpoint owns all of its memory (maps, vectors, encoded
// metadata); it stays valid however the node evolves afterwards, and
// one checkpoint may be installed any number of times.
//
// A nil Tau marks a store-only checkpoint: Install keeps the target
// node's fresh zero timestamp instead of rejecting a length mismatch.
// Live reconfiguration uses this to carry register contents across an
// epoch fence onto a different timestamp space, where the old vector
// is meaningless by construction.
type NodeCheckpoint struct {
	Replica sharegraph.ReplicaID
	Store   map[sharegraph.Register]Value
	Tau     timestamp.Vec
	Pending []Envelope
}

// Snapshotter is implemented by nodes that support crash/restart state
// transfer. The paper's edge-indexed nodes implement it; baselines that
// do not simply cannot be crashed in chaos runs.
type Snapshotter interface {
	Node
	// Snapshot captures the node's current state.
	Snapshot() *NodeCheckpoint
	// Install resets the node to a checkpoint previously taken from a
	// node of the same protocol and replica. Buffered updates are
	// re-filed through the normal ingest path; by protocol determinism
	// they stay buffered (they were undeliverable at snapshot time and
	// the restored τ is identical), but any applies that do occur are
	// returned so the runtime can report them to the oracle.
	Install(ck *NodeCheckpoint) ([]Applied, error)
}

// LivePendingCounter is implemented by nodes that can distinguish
// buffered updates still awaiting delivery from dead-parked ones (stale
// sequence numbers, fault-injected duplicates, untracked edges) that
// the delivery predicate can never admit. PendingCount counts both —
// matching the reference rescan engines — so reconfiguration fences use
// LivePending to decide whether a drained cluster has truly applied
// every update: at global quiesce every live buffered update's causal
// blockers are themselves delivered and the drain fixpoint admits them,
// so a nonzero LivePending after a drain is a liveness bug, while dead
// parkings are garbage the epoch switch may discard.
type LivePendingCounter interface {
	Node
	LivePending() int
}

var (
	_ Snapshotter        = (*edgeNode)(nil)
	_ LivePendingCounter = (*edgeNode)(nil)
)

// LivePending implements LivePendingCounter. Indexed engines count the
// filed per-sender queues (dead parkings live elsewhere); the naive
// engine rescans its flat buffer with the same staleness rule the
// indexed Offer applies at ingest.
func (n *edgeNode) LivePending() int {
	live := 0
	if !n.naive {
		for k := 0; k < n.space.NumReplicas(); k++ {
			live += n.q.QueueLen(k)
		}
		return live
	}
	for _, u := range n.pending {
		sp, ok := n.space.SeqPos(n.id, u.from)
		if !ok {
			continue // untracked edge: never deliverable
		}
		gp, _ := n.space.GatePos(n.id, u.from)
		if u.ts[sp] <= n.τ[gp] {
			continue // stale duplicate: the gate only grows
		}
		live++
	}
	return live
}

// Snapshot implements Snapshotter.
func (n *edgeNode) Snapshot() *NodeCheckpoint {
	ck := &NodeCheckpoint{
		Replica: n.id,
		Tau:     n.τ.Clone(),
		Store:   make(map[sharegraph.Register]Value, len(n.store)),
	}
	for x, v := range n.store {
		ck.Store[x] = v
	}
	collect := func(u pendingUpdate) {
		ck.Pending = append(ck.Pending, Envelope{
			From: u.from, To: n.id, Reg: u.reg, Val: u.val,
			Meta: timestamp.Encode(u.ts), OracleID: u.oracleID, MetaOnly: u.metaOnly,
		})
	}
	if n.naive {
		for _, u := range n.pending {
			collect(u)
		}
	} else {
		n.q.All(collect)
	}
	return ck
}

// Install implements Snapshotter.
func (n *edgeNode) Install(ck *NodeCheckpoint) ([]Applied, error) {
	if ck == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if ck.Replica != n.id {
		return nil, fmt.Errorf("core: checkpoint of replica %d installed at %d", ck.Replica, n.id)
	}
	switch {
	case ck.Tau == nil:
		// Store-only checkpoint (live reconfiguration): keep the fresh
		// zero vector — the new epoch starts with no tracked history.
		for i := range n.τ {
			n.τ[i] = 0
		}
	case len(ck.Tau) != len(n.τ):
		return nil, fmt.Errorf("core: checkpoint has %d timestamp entries, node tracks %d — different timestamp graphs",
			len(ck.Tau), len(n.τ))
	default:
		copy(n.τ, ck.Tau)
	}
	n.store = make(map[sharegraph.Register]Value, len(ck.Store))
	for x, v := range ck.Store {
		n.store[x] = v
	}
	n.pending = nil
	if !n.naive {
		n.q = ingest.NewSenderQueues[pendingUpdate](n.space.NumReplicas())
	}
	var out []Applied
	for _, env := range ck.Pending {
		// HandleMessage decodes Meta into a fresh vector, so the
		// checkpoint's buffers stay untouched and reusable.
		out = append(out, n.HandleMessage(env, DiscardSink{})...)
	}
	return out, nil
}
