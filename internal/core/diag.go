package core

import (
	"log"
	"sync/atomic"

	"repro/internal/sharegraph"
)

// Diag routes protocol ingest-drop diagnostics (corrupt metadata,
// out-of-range senders, wrong-length timestamps) to an injectable sink.
// The drops happen on the delivery hot path, and under a chaos or fuzz
// corrupt-metadata flood an unconditional log.Printf there serializes
// every delivery worker on the logger's mutex while spamming stderr —
// so Dropf always counts, always notifies the hook, and only *logs* a
// rate-limited sample (the first diagLogFirst drops, then every
// diagLogEvery-th).
//
// A nil *Diag is valid and falls back to the shared package default
// (rate-limited log.Printf, no hook) — protocols built outside a
// runtime keep today's observable behaviour minus the flood.
type Diag struct {
	logf   func(format string, args ...any)
	onDrop func(replica int)
	drops  atomic.Uint64
}

// defaultDiag backs nil receivers: rate-limited log.Printf, no hook.
// Shared across all un-wired protocols, so the rate limit is global —
// exactly the property that keeps a flood from serializing workers.
var defaultDiag Diag

const (
	diagLogFirst = 8    // log the first few drops verbatim
	diagLogEvery = 1024 // then one sample per this many drops
)

// NewDiag builds a sink. logf defaults to log.Printf (the
// wire.NodeOptions.Logf pattern); onDrop, when non-nil, is called once
// per drop with the dropping replica — runtimes use it to count drops
// in the obs registry. Both callbacks must be safe for concurrent use.
func NewDiag(logf func(format string, args ...any), onDrop func(replica int)) *Diag {
	return &Diag{logf: logf, onDrop: onDrop}
}

// Dropf records one rejected ingest at the given replica and logs a
// rate-limited sample of the formatted diagnostic. Nil-safe: a nil
// receiver uses the package-wide default sink.
func (d *Diag) Dropf(replica sharegraph.ReplicaID, format string, args ...any) {
	if d == nil {
		d = &defaultDiag
	}
	if d.onDrop != nil {
		d.onDrop(int(replica))
	}
	n := d.drops.Add(1)
	if n > diagLogFirst && n%diagLogEvery != 0 {
		return
	}
	logf := d.logf
	if logf == nil {
		logf = log.Printf
	}
	if n == diagLogFirst {
		args = append(args, diagLogEvery)
		logf(format+" (further drops sampled 1/%d)", args...)
		return
	}
	logf(format, args...)
}

// Drops returns the total number of drops recorded through this sink.
func (d *Diag) Drops() uint64 {
	if d == nil {
		d = &defaultDiag
	}
	return d.drops.Load()
}

// DiagSettable is implemented by protocols whose nodes route drop
// diagnostics through an injectable Diag. Runtimes that arm metrics
// inject a sink before building nodes; SetDiag only affects nodes built
// afterwards, and a protocol shared by several runtimes keeps the last
// sink set.
type DiagSettable interface {
	SetDiag(*Diag)
}
