// Package core implements the replica prototype of Section 2.1 of
// Xiang & Vaidya (PODC 2019) and its Section 3.3 instantiation with
// edge-indexed vector timestamps — the paper's primary contribution.
//
// The protocol logic is a pure, single-threaded state machine per replica
// (a Node): client operations and message deliveries are methods that
// return the messages to send and the updates applied. Runtimes — the
// deterministic simulator and the live goroutine cluster in internal/sim —
// layer scheduling, transport and concurrency on top without duplicating
// any protocol logic.
package core

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/sharegraph"
)

// Value is the content of a shared register write.
type Value int64

// Envelope is one update message on the wire: the register/value payload
// plus protocol metadata in encoded form. Meta's length is exactly the
// per-message metadata overhead the experiments measure. OracleID carries
// the causality oracle's identifier for checking only — protocols must
// never branch on it.
type Envelope struct {
	From     sharegraph.ReplicaID
	To       sharegraph.ReplicaID
	Reg      sharegraph.Register
	Val      Value
	Meta     []byte
	OracleID causality.UpdateID
	// MetaOnly marks a metadata-only message carrying no register value —
	// used by the dummy-register full-replication emulation of Section 5,
	// where replicas that do not store a register still receive timestamp
	// updates for it. MetaOnly deliveries never count as applied updates.
	MetaOnly bool
}

// Applied reports one update a node applied while processing an event.
type Applied struct {
	OracleID causality.UpdateID
	From     sharegraph.ReplicaID
	Reg      sharegraph.Register
	Val      Value
}

// Node is one replica's protocol state machine. Implementations are not
// safe for concurrent use; runtimes serialize access per node.
type Node interface {
	// ID returns the replica this node implements.
	ID() sharegraph.ReplicaID

	// HandleWrite processes a client write to a locally stored register:
	// it applies the write locally and returns the update messages to
	// send. id is the causality oracle's identifier for this update.
	// It fails if the register is not stored at this replica.
	HandleWrite(x sharegraph.Register, v Value, id causality.UpdateID) ([]Envelope, error)

	// HandleMessage ingests one received envelope, applies it and any
	// previously buffered updates that have become deliverable, and
	// returns the applied updates in application order plus any messages
	// to forward (relaying protocols, such as the Appendix D virtual
	// register overlays, propagate updates hop by hop).
	HandleMessage(env Envelope) ([]Applied, []Envelope)

	// Read returns the local copy of register x, per step 1 of the
	// prototype (reads never block). ok is false if x is not stored here.
	Read(x sharegraph.Register) (v Value, ok bool)

	// PendingCount returns the number of buffered (received but not yet
	// applied) updates — the pending_i set of the prototype.
	PendingCount() int

	// PendingOracleIDs lists the buffered updates' oracle IDs, for false
	// dependency accounting. Order is unspecified.
	PendingOracleIDs() []causality.UpdateID

	// MetadataEntries returns the number of integer counters in this
	// replica's timestamp — the quantity the paper's lower bounds govern.
	MetadataEntries() int
}

// Protocol builds the per-replica nodes of one causal-consistency
// implementation over a given share graph.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// NewNodes builds one node per replica.
	NewNodes() ([]Node, error)
}

// NotStoredError reports that a client operation named a register the
// replica does not store. Match it with errors.As.
type NotStoredError struct {
	Replica  sharegraph.ReplicaID
	Register sharegraph.Register
}

func (e *NotStoredError) Error() string {
	return fmt.Sprintf("core: replica %d does not store register %q", e.Replica, e.Register)
}
