// Package core implements the replica prototype of Section 2.1 of
// Xiang & Vaidya (PODC 2019) and its Section 3.3 instantiation with
// edge-indexed vector timestamps — the paper's primary contribution.
//
// The protocol logic is a pure, single-threaded state machine per replica
// (a Node): client operations and message deliveries are methods that
// return the messages to send and the updates applied. Runtimes — the
// deterministic simulator and the live goroutine cluster in internal/sim —
// layer scheduling, transport and concurrency on top without duplicating
// any protocol logic.
package core

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/sharegraph"
)

// Value is the content of a shared register write.
type Value int64

// Envelope is one update message on the wire: the register/value payload
// plus protocol metadata in encoded form. Meta's length is exactly the
// per-message metadata overhead the experiments measure. OracleID carries
// the causality oracle's identifier for checking only — protocols must
// never branch on it.
type Envelope struct {
	From     sharegraph.ReplicaID
	To       sharegraph.ReplicaID
	Reg      sharegraph.Register
	Val      Value
	Meta     []byte
	OracleID causality.UpdateID
	// MetaOnly marks a metadata-only message carrying no register value —
	// used by the dummy-register full-replication emulation of Section 5,
	// where replicas that do not store a register still receive timestamp
	// updates for it. MetaOnly deliveries never count as applied updates.
	MetaOnly bool
}

// Dest returns the destination replica as an inbox index — the routing
// hook the shared worker-pool engine (internal/runtime) keys on.
func (e Envelope) Dest() int { return int(e.To) }

// Source returns the sending replica — the hook the engine's fault
// layer keys its per-edge loss, duplication and partition plans on.
func (e Envelope) Source() int { return int(e.From) }

// Applied reports one update a node applied while processing an event.
type Applied struct {
	OracleID causality.UpdateID
	From     sharegraph.ReplicaID
	Reg      sharegraph.Register
	Val      Value
}

// Sink consumes the envelopes a node emits while handling one event. It
// is the runtime half of the emit contract that keeps the write fanout
// allocation-free: instead of allocating and returning an envelope slice,
// a node pushes each outgoing message into the caller's sink.
//
// Ownership: an Envelope passed to Emit — including its Meta buffer — is
// node-owned scratch, valid only for the duration of the Emit call. A
// sink that retains the envelope beyond that (buffering it in an inbox or
// a message pool) must copy Meta first; runtimes recycle those copies
// through freelists once the message has been ingested, so the steady
// state stays allocation-free end to end.
type Sink interface {
	Emit(Envelope)
}

// Node is one replica's protocol state machine. Implementations are not
// safe for concurrent use; runtimes serialize access per node.
type Node interface {
	// ID returns the replica this node implements.
	ID() sharegraph.ReplicaID

	// HandleWrite processes a client write to a locally stored register:
	// it applies the write locally and emits the update messages to send
	// into out (see Sink for the ownership contract). id is the causality
	// oracle's identifier for this update. It fails if the register is
	// not stored at this replica.
	HandleWrite(x sharegraph.Register, v Value, id causality.UpdateID, out Sink) error

	// HandleMessage ingests one received envelope, applies it and any
	// previously buffered updates that have become deliverable, and
	// returns the applied updates in application order. Messages to
	// forward (relaying protocols, such as the Appendix D virtual
	// register overlays, propagate updates hop by hop) are emitted into
	// out under the Sink ownership contract.
	//
	// The returned Applied slice is node-owned scratch, valid until the
	// next call on the node; runtimes consume it before dispatching
	// further events to the same node.
	HandleMessage(env Envelope, out Sink) []Applied

	// Read returns the local copy of register x, per step 1 of the
	// prototype (reads never block). ok is false if x is not stored here.
	Read(x sharegraph.Register) (v Value, ok bool)

	// PendingCount returns the number of buffered (received but not yet
	// applied) updates — the pending_i set of the prototype.
	PendingCount() int

	// PendingOracleIDs lists the buffered updates' oracle IDs, for false
	// dependency accounting. Order is unspecified.
	PendingOracleIDs() []causality.UpdateID

	// MetadataEntries returns the number of integer counters in this
	// replica's timestamp — the quantity the paper's lower bounds govern.
	MetadataEntries() int
}

// Protocol builds the per-replica nodes of one causal-consistency
// implementation over a given share graph.
//
// Every node implementation follows the emit contract: envelopes a node
// passes to a Sink reference node-owned scratch (notably the encoded
// metadata buffer) and must be consumed — delivered or copied — before
// the runtime's next call on that node. See Sink.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// NewNodes builds one node per replica.
	NewNodes() ([]Node, error)
}

// Collector is a Sink that accumulates emitted envelopes into a slice,
// cloning each Meta buffer so the envelopes stay valid across subsequent
// node calls. Tests and simple drivers use it where the allocation-free
// emit path does not matter; hot runtimes implement their own recycling
// sinks instead.
type Collector struct {
	Envs []Envelope
}

// Emit implements Sink.
func (c *Collector) Emit(env Envelope) {
	if env.Meta != nil {
		env.Meta = append([]byte(nil), env.Meta...)
	}
	c.Envs = append(c.Envs, env)
}

// Reset clears the collector for reuse, keeping its capacity.
func (c *Collector) Reset() { c.Envs = c.Envs[:0] }

// CollectWrite invokes n.HandleWrite and returns the emitted envelopes as
// a fresh slice with cloned metadata — the allocate-and-return shape the
// emit API replaced, for tests and hand-driven executions.
func CollectWrite(n Node, x sharegraph.Register, v Value, id causality.UpdateID) ([]Envelope, error) {
	var c Collector
	if err := n.HandleWrite(x, v, id, &c); err != nil {
		return nil, err
	}
	return c.Envs, nil
}

// CollectMessage invokes n.HandleMessage and returns the applied updates
// plus the forwarded envelopes as a fresh slice with cloned metadata.
func CollectMessage(n Node, env Envelope) ([]Applied, []Envelope) {
	var c Collector
	applied := n.HandleMessage(env, &c)
	return applied, c.Envs
}

// DiscardSink is a Sink that drops every envelope — for benchmarks and
// tests that only care about a node's local effects.
type DiscardSink struct{}

// Emit implements Sink.
func (DiscardSink) Emit(Envelope) {}

// NotStoredError reports that a client operation named a register the
// replica does not store. Match it with errors.As.
type NotStoredError struct {
	Replica  sharegraph.ReplicaID
	Register sharegraph.Register
}

func (e *NotStoredError) Error() string {
	return fmt.Sprintf("core: replica %d does not store register %q", e.Replica, e.Register)
}
