package core

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/ingest"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// EdgeIndexed is the paper's algorithm (Section 3.3): replica i maintains
// a vector timestamp indexed by the edges of its timestamp graph G_i, uses
// advance on local writes, merge when applying remote updates, and the
// predicate J to decide deliverability of buffered updates.
type EdgeIndexed struct {
	g     *sharegraph.Graph
	space *timestamp.Space
	name  string
	// realStore reports whether a replica genuinely stores a register (as
	// opposed to holding a Section 5 "dummy" copy that participates in the
	// share graph for timestamp purposes only). Defaults to the share
	// graph's own placement.
	realStore func(sharegraph.ReplicaID, sharegraph.Register) bool
	// naive selects the reference O(P²) full-buffer rescan instead of the
	// indexed per-sender delivery engine. Differential tests and
	// benchmarks compare the two; production paths never set it.
	naive bool
	// diag routes ingest-drop diagnostics; nil uses the rate-limited
	// package default.
	diag *Diag
}

var (
	_ Protocol     = (*EdgeIndexed)(nil)
	_ DiagSettable = (*EdgeIndexed)(nil)
)

// SetDiag implements DiagSettable: nodes built after this call report
// ingest drops through d.
func (p *EdgeIndexed) SetDiag(d *Diag) { p.diag = d }

// NewEdgeIndexed builds the protocol with timestamp graphs computed per
// Definition 5 (exhaustive loop search).
func NewEdgeIndexed(g *sharegraph.Graph) (*EdgeIndexed, error) {
	return NewEdgeIndexedWithGraphs(g, sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}), "edge-indexed")
}

// NewEdgeIndexedNaive builds the protocol with the reference full-buffer
// rescan drain instead of the indexed delivery engine. It exists to
// differentially test and benchmark the engine: both must produce
// identical applies, messages and oracle verdicts on every schedule.
func NewEdgeIndexedNaive(g *sharegraph.Graph) (*EdgeIndexed, error) {
	p, err := NewEdgeIndexedWithGraphs(g, sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}), "edge-indexed-naive")
	if err != nil {
		return nil, err
	}
	p.naive = true
	return p, nil
}

// NewEdgeIndexedWithGraphs builds the protocol over caller-supplied
// timestamp graphs. The Appendix D optimizations (dummy registers, l-hop
// truncation, ring breaking) and the Theorem 8 necessity experiments use
// this to run the same machinery over modified edge sets.
func NewEdgeIndexedWithGraphs(g *sharegraph.Graph, graphs []*sharegraph.TSGraph, name string) (*EdgeIndexed, error) {
	space, err := timestamp.NewSpace(g, graphs)
	if err != nil {
		return nil, fmt.Errorf("edge-indexed: %w", err)
	}
	return &EdgeIndexed{g: g, space: space, name: name, realStore: g.StoresRegister}, nil
}

// NewEdgeIndexedRouted builds the protocol over an EFFECTIVE share graph
// that may contain dummy register copies (Section 5): effective describes
// where registers live for timestamp and routing purposes, while realStore
// says which copies are genuine. Writes fan out data messages to genuine
// holders and metadata-only messages to dummy holders; reads and client
// writes are only accepted at genuine holders.
func NewEdgeIndexedRouted(effective *sharegraph.Graph, realStore func(sharegraph.ReplicaID, sharegraph.Register) bool, name string) (*EdgeIndexed, error) {
	p, err := NewEdgeIndexedWithGraphs(effective, sharegraph.BuildAllTSGraphs(effective, sharegraph.LoopOptions{}), name)
	if err != nil {
		return nil, err
	}
	p.realStore = realStore
	return p, nil
}

// AsNaive returns a copy of p that builds nodes with the reference
// rescan engine; differential tests use it to compare engines over
// identical graphs, routing and naming-independent measurements.
func AsNaive(p *EdgeIndexed) *EdgeIndexed {
	q := *p
	q.naive = true
	return &q
}

// Name implements Protocol.
func (p *EdgeIndexed) Name() string { return p.name }

// Space exposes the timestamp space (diagnostics and size accounting).
func (p *EdgeIndexed) Space() *timestamp.Space { return p.space }

// NewNodes implements Protocol.
func (p *EdgeIndexed) NewNodes() ([]Node, error) {
	n := p.g.NumReplicas()
	nodes := make([]Node, n)
	for i := range nodes {
		id := sharegraph.ReplicaID(i)
		en := &edgeNode{
			id:        id,
			g:         p.g,
			space:     p.space,
			realStore: p.realStore,
			naive:     p.naive,
			diag:      p.diag,
			τ:         p.space.Zero(id),
			store:     make(map[sharegraph.Register]Value, p.g.Stores(id).Len()),
			recip:     sharegraph.NewRecipientCache(p.g, id),
		}
		if !p.naive {
			en.q = ingest.NewSenderQueues[pendingUpdate](n)
			en.inWork = make([]bool, n)
		}
		nodes[i] = en
	}
	return nodes, nil
}

// pendingUpdate is one buffered update(k, T, x, v) message.
type pendingUpdate struct {
	from     sharegraph.ReplicaID
	ts       timestamp.Vec
	reg      sharegraph.Register
	val      Value
	metaOnly bool
	oracleID causality.UpdateID
}

// edgeNode is one replica running the Section 3.3 algorithm. The default
// delivery engine exploits the structure of predicate J: updates are filed
// in ingest.SenderQueues keyed by their e_{ki} sequence number (predicate
// J admits an update only when that number is exactly one past the
// receiver's gate counter, so at most one entry per sender can ever be
// deliverable), and after each merge only the sender heads whose gate
// counter just advanced are re-examined — O(1) amortized per message
// instead of the reference engine's O(P²) full-buffer rescans.
type edgeNode struct {
	id        sharegraph.ReplicaID
	g         *sharegraph.Graph
	space     *timestamp.Space
	realStore func(sharegraph.ReplicaID, sharegraph.Register) bool
	diag      *Diag
	τ         timestamp.Vec
	store     map[sharegraph.Register]Value

	// Reference engine (naive = true): flat buffer, full rescan.
	naive   bool
	pending []pendingUpdate

	// Indexed engine state.
	q ingest.SenderQueues[pendingUpdate]

	// Reusable scratch, valid until the next call on this node.
	applyBuf []Applied
	vecFree  []timestamp.Vec
	work     []sharegraph.ReplicaID
	inWork   []bool
	metaBuf  []byte
	recip    sharegraph.RecipientCache
}

var _ Node = (*edgeNode)(nil)

func (n *edgeNode) ID() sharegraph.ReplicaID { return n.id }

// HandleWrite implements step 2 of the replica prototype: write locally,
// advance the timestamp, and emit update(i, τ_i, x, v) to every other
// replica storing x. The metadata is encoded into node-owned scratch and
// the recipient list is cached per register, so the steady-state fanout
// performs no allocation; the sink owns copying what it retains.
func (n *edgeNode) HandleWrite(x sharegraph.Register, v Value, id causality.UpdateID, out Sink) error {
	if !n.realStore(n.id, x) {
		return &NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	n.space.AdvanceInPlace(n.id, n.τ, x)
	n.metaBuf = timestamp.EncodeTo(n.metaBuf[:0], n.τ)
	for _, k := range n.recip.Recipients(x) {
		out.Emit(Envelope{
			From: n.id, To: k, Reg: x, Val: v, Meta: n.metaBuf, OracleID: id,
			MetaOnly: !n.realStore(k, x),
		})
	}
	return nil
}

// HandleMessage implements steps 3–4: buffer the update, then repeatedly
// apply any buffered update whose predicate J evaluates true, merging
// timestamps as we go, until no buffered update is deliverable. The
// edge-indexed protocol never forwards, so out is unused.
//
// The returned Applied slice is owned by the node and valid until the
// next call on it; runtimes consume it before dispatching further events
// to the same node.
func (n *edgeNode) HandleMessage(env Envelope, out Sink) []Applied {
	ts, err := timestamp.DecodeReuse(&n.vecFree, env.Meta)
	if err != nil {
		// A corrupt message indicates a harness bug, not a protocol state;
		// surface (rate-limited) but do not crash the run.
		n.diag.Dropf(n.id, "edge-indexed: replica %d dropping corrupt metadata from %d: %v", n.id, env.From, err)
		return nil
	}
	// Both engines index plans and the decoded vector by sender; a sender
	// outside the replica set or a wrong-length vector is harness
	// corruption that must be dropped, not dereferenced.
	if int(env.From) < 0 || int(env.From) >= n.space.NumReplicas() {
		n.diag.Dropf(n.id, "edge-indexed: replica %d dropping update from invalid sender %d", n.id, env.From)
		return nil
	}
	if len(ts) != n.space.Len(env.From) {
		n.diag.Dropf(n.id, "edge-indexed: replica %d dropping update from %d with %d-entry timestamp, want %d",
			n.id, env.From, len(ts), n.space.Len(env.From))
		return nil
	}
	u := pendingUpdate{
		from: env.From, ts: ts, reg: env.Reg, val: env.Val,
		metaOnly: env.MetaOnly, oracleID: env.OracleID,
	}
	if n.naive {
		n.pending = append(n.pending, u)
		return n.drainNaive()
	}

	seqPos, ok := n.space.SeqPos(n.id, env.From)
	if !ok {
		// e_{ki} untracked (truncated graphs, or a self-addressed
		// message): predicate J can never admit this update. Park it with
		// the dead buffer so pending accounting matches the reference
		// engine, which keeps rescanning it forever in vain.
		n.q.Park(u)
		return nil
	}
	gatePos, _ := n.space.GatePos(n.id, env.From)
	// Stale sequence numbers park dead: the gate only grows, so strict
	// equality τ[e_ki] = seq − 1 can never hold again (reliable transport
	// never produces this, but corrupt or replayed metadata could).
	if !n.q.Offer(int(env.From), ts[seqPos], n.τ[gatePos], u) {
		// Nothing in τ changed; no other buffered update can have become
		// deliverable. Most out-of-order arrivals take this O(1) exit.
		return nil
	}
	return n.drainFrom(env.From)
}

// drainFrom applies deliverable pending updates until a fixpoint, starting
// with sender k whose gate may now match its queue head. Each apply
// advances exactly one gate counter (the applied sender's own e_{ki};
// merge cannot move any other incoming-edge counter, since predicate J
// required τ to already dominate them), so only the sender heads listed in
// the space's precomputed recheck set need re-examination.
func (n *edgeNode) drainFrom(k sharegraph.ReplicaID) []Applied {
	out := n.applyBuf[:0]
	work := n.work[:0]
	work = append(work, k)
	n.inWork[k] = true
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		n.inWork[j] = false
		gatePos, ok := n.space.GatePos(n.id, j)
		if !ok {
			continue
		}
		for {
			u, ok := n.q.Peek(int(j), n.τ[gatePos]+1)
			if !ok || !n.space.Deliverable(n.id, n.τ, j, u.ts) {
				break
			}
			n.q.Remove(int(j), n.τ[gatePos]+1)
			if !u.metaOnly {
				n.store[u.reg] = u.val
			}
			n.space.MergeInPlace(n.id, n.τ, j, u.ts)
			n.vecFree = append(n.vecFree, u.ts)
			if !u.metaOnly {
				out = append(out, Applied{
					OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
				})
			}
			// j's own next head is retried by this loop; queue the other
			// affected senders.
			for _, m := range n.space.RecheckOnApply(n.id, j) {
				if m != j && !n.inWork[m] && n.q.QueueLen(int(m)) > 0 {
					work = append(work, m)
					n.inWork[m] = true
				}
			}
		}
	}
	n.applyBuf = out
	n.work = work
	return out
}

// drainNaive is the reference engine: rescan the whole buffer until no
// pending update is deliverable.
func (n *edgeNode) drainNaive() []Applied {
	var out []Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if !n.space.Deliverable(n.id, n.τ, u.from, u.ts) {
				continue
			}
			// Apply atomically: write value (unless this is a dummy
			// metadata-only update), merge timestamp, unbuffer.
			if !u.metaOnly {
				n.store[u.reg] = u.val
			}
			n.space.MergeInPlace(n.id, n.τ, u.from, u.ts)
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			if !u.metaOnly {
				out = append(out, Applied{
					OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
				})
			}
			progress = true
			idx-- // the slot now holds the next pending update
		}
		if !progress {
			return out
		}
	}
}

// Read implements step 1: respond with the local copy. Dummy copies are
// never readable.
func (n *edgeNode) Read(x sharegraph.Register) (Value, bool) {
	if !n.realStore(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *edgeNode) PendingCount() int {
	if n.naive {
		return len(n.pending)
	}
	return n.q.Len()
}

func (n *edgeNode) PendingOracleIDs() []causality.UpdateID {
	if n.naive {
		out := make([]causality.UpdateID, 0, len(n.pending))
		for _, u := range n.pending {
			if !u.metaOnly {
				out = append(out, u.oracleID)
			}
		}
		return out
	}
	out := make([]causality.UpdateID, 0, n.q.Len())
	n.q.All(func(u pendingUpdate) {
		if !u.metaOnly {
			out = append(out, u.oracleID)
		}
	})
	return out
}

func (n *edgeNode) MetadataEntries() int { return len(n.τ) }

// Timestamp returns a copy of the node's current vector (diagnostics).
func (n *edgeNode) Timestamp() timestamp.Vec { return n.τ.Clone() }
