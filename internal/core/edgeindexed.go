package core

import (
	"fmt"
	"log"

	"repro/internal/causality"
	"repro/internal/sharegraph"
	"repro/internal/timestamp"
)

// EdgeIndexed is the paper's algorithm (Section 3.3): replica i maintains
// a vector timestamp indexed by the edges of its timestamp graph G_i, uses
// advance on local writes, merge when applying remote updates, and the
// predicate J to decide deliverability of buffered updates.
type EdgeIndexed struct {
	g     *sharegraph.Graph
	space *timestamp.Space
	name  string
	// realStore reports whether a replica genuinely stores a register (as
	// opposed to holding a Section 5 "dummy" copy that participates in the
	// share graph for timestamp purposes only). Defaults to the share
	// graph's own placement.
	realStore func(sharegraph.ReplicaID, sharegraph.Register) bool
}

var _ Protocol = (*EdgeIndexed)(nil)

// NewEdgeIndexed builds the protocol with timestamp graphs computed per
// Definition 5 (exhaustive loop search).
func NewEdgeIndexed(g *sharegraph.Graph) (*EdgeIndexed, error) {
	return NewEdgeIndexedWithGraphs(g, sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{}), "edge-indexed")
}

// NewEdgeIndexedWithGraphs builds the protocol over caller-supplied
// timestamp graphs. The Appendix D optimizations (dummy registers, l-hop
// truncation, ring breaking) and the Theorem 8 necessity experiments use
// this to run the same machinery over modified edge sets.
func NewEdgeIndexedWithGraphs(g *sharegraph.Graph, graphs []*sharegraph.TSGraph, name string) (*EdgeIndexed, error) {
	space, err := timestamp.NewSpace(g, graphs)
	if err != nil {
		return nil, fmt.Errorf("edge-indexed: %w", err)
	}
	return &EdgeIndexed{g: g, space: space, name: name, realStore: g.StoresRegister}, nil
}

// NewEdgeIndexedRouted builds the protocol over an EFFECTIVE share graph
// that may contain dummy register copies (Section 5): effective describes
// where registers live for timestamp and routing purposes, while realStore
// says which copies are genuine. Writes fan out data messages to genuine
// holders and metadata-only messages to dummy holders; reads and client
// writes are only accepted at genuine holders.
func NewEdgeIndexedRouted(effective *sharegraph.Graph, realStore func(sharegraph.ReplicaID, sharegraph.Register) bool, name string) (*EdgeIndexed, error) {
	p, err := NewEdgeIndexedWithGraphs(effective, sharegraph.BuildAllTSGraphs(effective, sharegraph.LoopOptions{}), name)
	if err != nil {
		return nil, err
	}
	p.realStore = realStore
	return p, nil
}

// Name implements Protocol.
func (p *EdgeIndexed) Name() string { return p.name }

// Space exposes the timestamp space (diagnostics and size accounting).
func (p *EdgeIndexed) Space() *timestamp.Space { return p.space }

// NewNodes implements Protocol.
func (p *EdgeIndexed) NewNodes() ([]Node, error) {
	nodes := make([]Node, p.g.NumReplicas())
	for i := range nodes {
		id := sharegraph.ReplicaID(i)
		nodes[i] = &edgeNode{
			id:        id,
			g:         p.g,
			space:     p.space,
			realStore: p.realStore,
			τ:         p.space.Zero(id),
			store:     make(map[sharegraph.Register]Value, p.g.Stores(id).Len()),
		}
	}
	return nodes, nil
}

// pendingUpdate is one buffered update(k, T, x, v) message.
type pendingUpdate struct {
	from     sharegraph.ReplicaID
	ts       timestamp.Vec
	reg      sharegraph.Register
	val      Value
	metaOnly bool
	oracleID causality.UpdateID
}

// edgeNode is one replica running the Section 3.3 algorithm.
type edgeNode struct {
	id        sharegraph.ReplicaID
	g         *sharegraph.Graph
	space     *timestamp.Space
	realStore func(sharegraph.ReplicaID, sharegraph.Register) bool
	τ         timestamp.Vec
	store     map[sharegraph.Register]Value
	pending   []pendingUpdate
}

var _ Node = (*edgeNode)(nil)

func (n *edgeNode) ID() sharegraph.ReplicaID { return n.id }

// HandleWrite implements step 2 of the replica prototype: write locally,
// advance the timestamp, and send update(i, τ_i, x, v) to every other
// replica storing x.
func (n *edgeNode) HandleWrite(x sharegraph.Register, v Value, id causality.UpdateID) ([]Envelope, error) {
	if !n.realStore(n.id, x) {
		return nil, &NotStoredError{Replica: n.id, Register: x}
	}
	n.store[x] = v
	n.τ = n.space.Advance(n.id, n.τ, x)
	meta := timestamp.Encode(n.τ)
	recipients := n.g.UpdateRecipients(n.id, x)
	out := make([]Envelope, 0, len(recipients))
	for _, k := range recipients {
		out = append(out, Envelope{
			From: n.id, To: k, Reg: x, Val: v, Meta: meta, OracleID: id,
			MetaOnly: !n.realStore(k, x),
		})
	}
	return out, nil
}

// HandleMessage implements steps 3–4: buffer the update, then repeatedly
// apply any buffered update whose predicate J evaluates true, merging
// timestamps as we go, until no buffered update is deliverable.
func (n *edgeNode) HandleMessage(env Envelope) ([]Applied, []Envelope) {
	ts, err := timestamp.Decode(env.Meta)
	if err != nil {
		// A corrupt message indicates a harness bug, not a protocol state;
		// surface loudly but do not crash the run.
		log.Printf("edge-indexed: replica %d dropping corrupt metadata from %d: %v", n.id, env.From, err)
		return nil, nil
	}
	n.pending = append(n.pending, pendingUpdate{
		from: env.From, ts: ts, reg: env.Reg, val: env.Val,
		metaOnly: env.MetaOnly, oracleID: env.OracleID,
	})
	return n.drain(), nil
}

// drain applies deliverable pending updates until a fixpoint.
func (n *edgeNode) drain() []Applied {
	var out []Applied
	for {
		progress := false
		for idx := 0; idx < len(n.pending); idx++ {
			u := n.pending[idx]
			if !n.space.Deliverable(n.id, n.τ, u.from, u.ts) {
				continue
			}
			// Apply atomically: write value (unless this is a dummy
			// metadata-only update), merge timestamp, unbuffer.
			if !u.metaOnly {
				n.store[u.reg] = u.val
			}
			n.space.MergeInPlace(n.id, n.τ, u.from, u.ts)
			n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
			if !u.metaOnly {
				out = append(out, Applied{
					OracleID: u.oracleID, From: u.from, Reg: u.reg, Val: u.val,
				})
			}
			progress = true
			idx-- // the slot now holds the next pending update
		}
		if !progress {
			return out
		}
	}
}

// Read implements step 1: respond with the local copy. Dummy copies are
// never readable.
func (n *edgeNode) Read(x sharegraph.Register) (Value, bool) {
	if !n.realStore(n.id, x) {
		return 0, false
	}
	return n.store[x], true
}

func (n *edgeNode) PendingCount() int { return len(n.pending) }

func (n *edgeNode) PendingOracleIDs() []causality.UpdateID {
	out := make([]causality.UpdateID, 0, len(n.pending))
	for _, u := range n.pending {
		if !u.metaOnly {
			out = append(out, u.oracleID)
		}
	}
	return out
}

func (n *edgeNode) MetadataEntries() int { return len(n.τ) }

// Timestamp returns a copy of the node's current vector (diagnostics).
func (n *edgeNode) Timestamp() timestamp.Vec { return n.τ.Clone() }
