// Package membership is a heartbeat failure detector and membership
// view for the live runtimes: per-link local failure detection (each
// replica probes every other on a fixed interval and counts consecutive
// misses against a threshold) aggregated into a global view that marks
// replicas alive, suspected or down, with incarnation numbers bumped on
// each rejoin.
//
// The detector is deliberately transport-agnostic: it draws probes from
// a caller-supplied function — in practice the fault injector's Probe,
// so cuts, crashes and the loss lottery all shape what the detector
// sees. Links that crossed the suspicion threshold back off
// exponentially between reconnect probes (capped), so a long-dead
// replica is not hammered at full heartbeat rate, yet a healed link is
// still rediscovered promptly.
//
// Tuning: the detection latency of a clean failure is Interval ×
// Threshold; the false-suspicion probability of one link per round is
// Drop^Threshold under an independent per-probe loss rate Drop. Raising
// Threshold suppresses false suspicion geometrically at linear latency
// cost — the classic trade-off, measured in this repo's chaos tests.
//
// Timekeeping is injected (Tick takes the current time), so unit tests
// drive the detector deterministically; Start runs a real-time loop for
// the live cluster.
package membership

import (
	"fmt"
	"sync"
	"time"
)

// Status is one replica's standing in the membership view.
type Status uint8

const (
	// Alive: every inbound link is below the suspicion threshold.
	Alive Status = iota
	// Suspected: some inbound links crossed the threshold, others still
	// answer — an asymmetric partition or lossy-link signature.
	Suspected
	// Down: every inbound link crossed the threshold.
	Down
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspected:
		return "suspected"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Event records one status transition of one replica.
type Event struct {
	Replica int
	Old     Status
	New     Status
	// Incarnation counts rejoins: it is 0 until the replica's first
	// Down→(Alive|Suspected) transition, then increments per rejoin.
	Incarnation int
}

func (e Event) String() string {
	return fmt.Sprintf("replica %d: %s -> %s (incarnation %d)", e.Replica, e.Old, e.New, e.Incarnation)
}

// Options tunes the detector. The zero value selects the defaults
// documented per field.
type Options struct {
	// Interval is the heartbeat period per link (default 5ms).
	Interval time.Duration
	// Threshold is the number of consecutive missed probes after which a
	// link is held against its destination (default 3).
	Threshold int
	// BackoffMax caps the exponential reconnect backoff of a
	// suspected link (default 16 × Interval).
	BackoffMax time.Duration
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 16 * o.Interval
	}
	return o
}

// link is the LFD state of one ordered replica pair.
type link struct {
	misses  int
	backoff time.Duration
	next    time.Time // next probe due; zero = immediately
}

// Detector aggregates per-link heartbeats into a membership view. Safe
// for concurrent use.
type Detector struct {
	n     int
	probe func(from, to int) bool
	opts  Options

	mu      sync.Mutex
	links   []link // [from*n+to]
	status  []Status
	incarn  []int
	events  []Event
	onEvent func(Event)
	probes  uint64

	stop chan struct{}
	done chan struct{}
}

// New builds a detector over n replicas drawing probes from probe(from,
// to) — true means the probe was answered. It does not start a clock;
// call Start for the real-time loop or Tick to drive it manually.
func New(n int, probe func(from, to int) bool, opts Options) *Detector {
	return &Detector{
		n:      n,
		probe:  probe,
		opts:   opts.withDefaults(),
		links:  make([]link, n*n),
		status: make([]Status, n),
		incarn: make([]int, n),
	}
}

// OnEvent registers a callback invoked (under the detector lock) for
// every status transition. Set it before Start.
func (d *Detector) OnEvent(fn func(Event)) { d.onEvent = fn }

// Tick runs one detector round at the given time: every due link is
// probed, miss counters and backoffs update, and replica statuses are
// recomputed. Deterministic given the probe function.
func (d *Detector) Tick(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for from := 0; from < d.n; from++ {
		for to := 0; to < d.n; to++ {
			if from == to {
				continue
			}
			l := &d.links[from*d.n+to]
			if !l.next.IsZero() && now.Before(l.next) {
				continue
			}
			d.probes++
			if d.probe(from, to) {
				l.misses = 0
				l.backoff = 0
				l.next = now.Add(d.opts.Interval)
				continue
			}
			l.misses++
			if l.misses < d.opts.Threshold {
				l.next = now.Add(d.opts.Interval)
				continue
			}
			// Suspected link: exponential-backoff reconnect probing.
			if l.backoff == 0 {
				l.backoff = 2 * d.opts.Interval
			} else {
				l.backoff *= 2
			}
			if l.backoff > d.opts.BackoffMax {
				l.backoff = d.opts.BackoffMax
			}
			l.next = now.Add(l.backoff)
		}
	}
	for to := 0; to < d.n; to++ {
		d.refreshLocked(to)
	}
}

// refreshLocked recomputes one replica's status from its inbound links.
func (d *Detector) refreshLocked(to int) {
	crossed, clean := 0, 0
	for from := 0; from < d.n; from++ {
		if from == to {
			continue
		}
		if d.links[from*d.n+to].misses >= d.opts.Threshold {
			crossed++
		} else {
			clean++
		}
	}
	next := Alive
	switch {
	case crossed > 0 && clean == 0:
		next = Down
	case crossed > 0:
		next = Suspected
	}
	old := d.status[to]
	if next == old {
		return
	}
	if old == Down {
		d.incarn[to]++
	}
	d.status[to] = next
	ev := Event{Replica: to, Old: old, New: next, Incarnation: d.incarn[to]}
	d.events = append(d.events, ev)
	if d.onEvent != nil {
		d.onEvent(ev)
	}
}

// Start runs the real-time detector loop until Stop: one Tick per
// Interval. Links the Tick put into backoff are skipped until due, so
// the wall-clock probe rate genuinely drops for suspected replicas.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return // already running
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stop, d.done
	d.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(d.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				d.Tick(now)
			}
		}
	}()
}

// Stop halts the Start loop and waits for it to exit. Safe to call on a
// never-started detector.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Status returns replica r's current standing.
func (d *Detector) Status(r int) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status[r]
}

// Statuses returns a copy of every replica's standing.
func (d *Detector) Statuses() []Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Status(nil), d.status...)
}

// Incarnation returns replica r's rejoin count.
func (d *Detector) Incarnation(r int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incarn[r]
}

// Events returns a copy of every status transition observed so far.
func (d *Detector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

// Probes returns the number of probes issued so far — the quantity the
// backoff exists to bound.
func (d *Detector) Probes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.probes
}
