package membership

import (
	"sync"
	"testing"
	"time"
)

// probeMatrix is a mutable, lockable fake transport.
type probeMatrix struct {
	mu   sync.Mutex
	dead map[[2]int]bool // directed links that fail
	down map[int]bool    // replicas that answer nothing and probe nothing
}

func newMatrix() *probeMatrix {
	return &probeMatrix{dead: make(map[[2]int]bool), down: make(map[int]bool)}
}

func (p *probeMatrix) probe(from, to int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.down[from] && !p.down[to] && !p.dead[[2]int{from, to}]
}

// tickN drives n rounds spaced one interval apart, returning the final
// synthetic time.
func tickN(d *Detector, start time.Time, n int, interval time.Duration) time.Time {
	now := start
	for i := 0; i < n; i++ {
		d.Tick(now)
		now = now.Add(interval)
	}
	return now
}

func TestDetectorCrashRejoinIncarnation(t *testing.T) {
	const n = 4
	m := newMatrix()
	opts := Options{Interval: time.Millisecond, Threshold: 3}
	d := New(n, m.probe, opts)
	t0 := time.Unix(0, 0)

	now := tickN(d, t0, 5, opts.Interval)
	for r := 0; r < n; r++ {
		if d.Status(r) != Alive {
			t.Fatalf("replica %d: %s, want alive", r, d.Status(r))
		}
	}

	// Crash replica 2: every inbound link misses; after Threshold rounds
	// it is Down.
	m.mu.Lock()
	m.down[2] = true
	m.mu.Unlock()
	now = tickN(d, now, opts.Threshold, opts.Interval)
	if d.Status(2) != Down {
		t.Fatalf("replica 2 after %d missed rounds: %s, want down", opts.Threshold, d.Status(2))
	}
	if d.Incarnation(2) != 0 {
		t.Fatalf("incarnation before first rejoin: %d, want 0", d.Incarnation(2))
	}
	// Replica 2 down also means 2's own probes fail — but that holds
	// links 2→j against j only if ALL of j's inbound links miss, so the
	// healthy replicas stay Suspected at worst. With only one down
	// replica, j has n-2 clean inbound links: Suspected.
	for r := 0; r < n; r++ {
		if r == 2 {
			continue
		}
		if s := d.Status(r); s == Down {
			t.Fatalf("healthy replica %d marked down", r)
		}
	}

	// Restart: links recover on their next due probe (backoff-delayed),
	// and the Down→Alive transition bumps the incarnation.
	m.mu.Lock()
	delete(m.down, 2)
	m.mu.Unlock()
	now = tickN(d, now, 40, opts.Interval) // enough rounds to clear BackoffMax
	if d.Status(2) != Alive {
		t.Fatalf("replica 2 after restart: %s, want alive", d.Status(2))
	}
	if d.Incarnation(2) != 1 {
		t.Fatalf("incarnation after rejoin: %d, want 1", d.Incarnation(2))
	}
	var downSeen, rejoinSeen bool
	for _, ev := range d.Events() {
		if ev.Replica == 2 && ev.New == Down {
			downSeen = true
		}
		if ev.Replica == 2 && ev.Old == Down && ev.Incarnation == 1 {
			rejoinSeen = true
		}
	}
	if !downSeen || !rejoinSeen {
		t.Fatalf("event trail missing down/rejoin transitions: %v", d.Events())
	}
	_ = now
}

func TestDetectorAsymmetricPartitionSuspects(t *testing.T) {
	const n = 3
	m := newMatrix()
	opts := Options{Interval: time.Millisecond, Threshold: 2}
	d := New(n, m.probe, opts)
	t0 := time.Unix(0, 0)
	now := tickN(d, t0, 3, opts.Interval)

	// One-way cut 0→1: only the 0→1 link misses; replica 1 still answers
	// replica 2, so it must be Suspected, never Down.
	m.mu.Lock()
	m.dead[[2]int{0, 1}] = true
	m.mu.Unlock()
	now = tickN(d, now, 4, opts.Interval)
	if d.Status(1) != Suspected {
		t.Fatalf("replica 1 under one-way cut: %s, want suspected", d.Status(1))
	}
	if d.Status(0) != Alive || d.Status(2) != Alive {
		t.Fatalf("unaffected replicas changed status: 0=%s 2=%s", d.Status(0), d.Status(2))
	}

	m.mu.Lock()
	delete(m.dead, [2]int{0, 1})
	m.mu.Unlock()
	tickN(d, now, 20, opts.Interval)
	if d.Status(1) != Alive {
		t.Fatalf("replica 1 after heal: %s, want alive", d.Status(1))
	}
}

// TestDetectorBackoffReducesProbes pins the reconnect backoff: with one
// replica long dead, the probe rate toward it falls well below one per
// link per interval.
func TestDetectorBackoffReducesProbes(t *testing.T) {
	const n = 2
	m := newMatrix()
	opts := Options{Interval: time.Millisecond, Threshold: 2, BackoffMax: 8 * time.Millisecond}
	d := New(n, m.probe, opts)
	t0 := time.Unix(0, 0)
	now := tickN(d, t0, opts.Threshold+1, opts.Interval)

	m.mu.Lock()
	m.down[1] = true
	m.mu.Unlock()
	// Let the links cross the threshold and enter backoff.
	now = tickN(d, now, opts.Threshold+1, opts.Interval)
	base := d.Probes()
	const rounds = 64
	tickN(d, now, rounds, opts.Interval)
	got := d.Probes() - base
	// Without backoff both directed links would probe every round:
	// 2*rounds probes. With exponential backoff capped at 8×Interval the
	// steady rate is ~2*rounds/8; allow generous slack above that.
	if limit := uint64(2 * rounds / 2); got >= limit {
		t.Fatalf("suspected-link probes = %d over %d rounds, want < %d (backoff not applied)",
			got, rounds, limit)
	}
}

// TestDetectorStartStop exercises the real-time loop against a live
// matrix — smoke only; the deterministic tests above pin semantics.
func TestDetectorStartStop(t *testing.T) {
	m := newMatrix()
	d := New(3, m.probe, Options{Interval: time.Millisecond, Threshold: 2})
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for d.Probes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
	if d.Probes() == 0 {
		t.Fatal("real-time loop never probed")
	}
	for r := 0; r < 3; r++ {
		if d.Status(r) != Alive {
			t.Fatalf("replica %d: %s, want alive", r, d.Status(r))
		}
	}
}
