package prcc

import (
	"fmt"
	"strings"
	"testing"
)

func fig3System(t testing.TB) *System {
	t.Helper()
	sys, err := New([][]Register{{"x"}, {"x", "y"}, {"y", "z"}, {"z"}})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := fig3System(t)
	if sys.NumReplicas() != 4 {
		t.Fatalf("NumReplicas = %d", sys.NumReplicas())
	}
	if !sys.Stores(1, "y") || sys.Stores(0, "y") {
		t.Error("Stores wrong")
	}
	if hs := sys.Holders("y"); len(hs) != 2 || hs[0] != 1 || hs[1] != 2 {
		t.Errorf("Holders(y) = %v", hs)
	}
	if len(sys.Registers()) != 3 {
		t.Errorf("Registers = %v", sys.Registers())
	}
	if sys.MetadataEntries(1) != 4 { // path graph: 2 neighbours × 2 directions
		t.Errorf("MetadataEntries(1) = %d, want 4", sys.MetadataEntries(1))
	}
	if edges := sys.TrackedEdges(0); len(edges) != 2 {
		t.Errorf("TrackedEdges(0) = %v", edges)
	}
	if !strings.Contains(sys.ShareGraph(), "share graph") {
		t.Error("ShareGraph render empty")
	}

	cluster, err := sys.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Write(1, "y", 42); err != nil {
		t.Fatal(err)
	}
	cluster.Sync()
	if v, ok := cluster.Read(2, "y"); !ok || v != 42 {
		t.Errorf("Read(2,y) = (%d,%v), want (42,true)", v, ok)
	}
	if err := cluster.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if m := cluster.Metrics(); m.Messages == 0 || m.MetaBytes == 0 {
		t.Errorf("Metrics = (%d,%d)", m.Messages, m.MetaBytes)
	}
	if err := cluster.Write(0, "zzz", 1); err == nil {
		t.Error("write to unstored register accepted")
	}
}

func TestSimulateProtocols(t *testing.T) {
	sys := fig3System(t)
	for _, kind := range []ProtocolKind{EdgeIndexedProtocol, MatrixProtocol, BroadcastProtocol} {
		rep, err := sys.Simulate(SimOptions{Protocol: kind, Ops: 100, Seed: 3, TrackFalseDeps: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Errorf("%v: violations %v", kind, rep.Violations)
		}
		if rep.Writes == 0 || rep.Messages == 0 {
			t.Errorf("%v: empty run %+v", kind, rep)
		}
		if rep.AvgMetaBytes <= 0 {
			t.Errorf("%v: AvgMetaBytes = %v", kind, rep.AvgMetaBytes)
		}
	}
	// The unsafe/non-live baselines must be runnable too (their failures
	// are the experiment).
	if _, err := sys.Simulate(SimOptions{Protocol: NaiveVectorProtocol, Ops: 50}); err != nil {
		t.Error(err)
	}
	if _, err := sys.Simulate(SimOptions{Protocol: FIFOOnlyProtocol, Ops: 50, Adversarial: true}); err != nil {
		t.Error(err)
	}
	if _, err := sys.Simulate(SimOptions{Protocol: ProtocolKind(99)}); err == nil {
		t.Error("unknown protocol accepted")
	}
	for _, k := range []ProtocolKind{EdgeIndexedProtocol, MatrixProtocol, BroadcastProtocol, NaiveVectorProtocol, FIFOOnlyProtocol, ProtocolKind(99)} {
		if k.String() == "" {
			t.Error("empty protocol name")
		}
	}
}

func TestRunClusterProtocols(t *testing.T) {
	sys := fig3System(t)
	for _, kind := range []ProtocolKind{EdgeIndexedProtocol, MatrixProtocol, BroadcastProtocol} {
		rep, err := sys.RunCluster(RunClusterOptions{
			Protocol: kind, Ops: 200, Seed: 5,
			Cluster: ClusterOptions{Workers: 3, InboxCapacity: 8, Seed: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Errorf("%v: live run not clean: stuck=%d violations=%v", kind, rep.StuckUpdates, rep.Violations)
		}
		if rep.Writes == 0 || rep.Messages == 0 || rep.MetaBytes == 0 {
			t.Errorf("%v: empty live run %+v", kind, rep)
		}
		if rep.Workers != 3 {
			t.Errorf("%v: Workers = %d, want 3", kind, rep.Workers)
		}
	}
	if _, err := sys.RunCluster(RunClusterOptions{Protocol: ProtocolKind(99)}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestClusterWithOptions(t *testing.T) {
	sys := fig3System(t)
	c, err := sys.ClusterWith(ClusterOptions{Workers: 2, InboxCapacity: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 2 {
		t.Errorf("Workers = %d, want 2", c.Workers())
	}
	for i := 0; i < 50; i++ {
		if err := c.Write(1, "y", Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Sync()
	if n := c.Outstanding(); n != 0 {
		t.Errorf("Outstanding after Sync = %d", n)
	}
	if err := c.Check(); err != nil {
		t.Error(err)
	}
	c.Close()
	if n := c.Outstanding(); n != 0 {
		t.Errorf("Outstanding after Close = %d", n)
	}
}

// TestSkipAudit covers the pure-throughput knob end to end: simulation
// and live cluster both run without the oracle, still moving data, and
// Check on an unaudited cluster reports nothing.
func TestSkipAudit(t *testing.T) {
	sys := fig3System(t)
	rep, err := sys.Simulate(SimOptions{Ops: 150, Seed: 4, SkipAudit: true, TrackFalseDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.FalseDeps != 0 {
		t.Errorf("unaudited sim produced verdicts: %+v", rep)
	}
	if rep.Writes == 0 || rep.Applies == 0 {
		t.Errorf("unaudited sim moved no data: %+v", rep)
	}

	crep, err := sys.RunCluster(RunClusterOptions{
		Ops: 150, Seed: 4,
		Cluster: ClusterOptions{Workers: 2, SkipAudit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(crep.Violations) != 0 {
		t.Errorf("unaudited cluster produced verdicts: %+v", crep)
	}
	if crep.Writes == 0 || crep.Messages == 0 {
		t.Errorf("unaudited cluster moved no data: %+v", crep)
	}

	c, err := sys.ClusterWith(ClusterOptions{SkipAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, "y", 9); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	if v, ok := c.Read(2, "y"); !ok || v != 9 {
		t.Errorf("Read(2,y) = (%d,%v), want (9,true)", v, ok)
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check on unaudited cluster: %v", err)
	}
}

// TestLiveClientServerWithOptions covers the unified options surface on
// the Appendix E live deployment.
func TestLiveClientServerWithOptions(t *testing.T) {
	cs, err := NewClientServer(
		[][]Register{{"a", "c"}, {"a"}, {"b"}, {"b", "c"}},
		[][]ReplicaID{{1, 2}, {3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	live := cs.LiveWith(ClusterOptions{Workers: 2, InboxCapacity: 4, Seed: 3})
	defer live.Close()
	if live.Workers() != 2 {
		t.Errorf("Workers = %d, want 2", live.Workers())
	}
	alice := live.Client(0)
	for k := 1; k <= 10; k++ {
		if err := alice.Write("a", Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	live.Sync()
	if n := live.Outstanding(); n != 0 {
		t.Errorf("Outstanding after Sync = %d", n)
	}
	if m := live.Metrics(); m.Updates == 0 || m.MetaBytes == 0 {
		t.Errorf("Metrics = (%d, %d)", m.Updates, m.MetaBytes)
	}
	if err := live.Check(); err != nil {
		t.Error(err)
	}
}

func TestCompressionAndLowerBound(t *testing.T) {
	sys := fig3System(t)
	for _, rep := range sys.Compression() {
		if rep.Compressed > rep.Entries {
			t.Errorf("replica %d: compressed %d > entries %d", rep.Replica, rep.Compressed, rep.Entries)
		}
	}
	lb := sys.LowerBound(1, 2)
	if !lb.Verified || !lb.Tight {
		t.Errorf("LowerBound(1,2) = %+v; path graphs are tight", lb)
	}
	if lb.Exponent != 4 || lb.Bits != 4 {
		t.Errorf("LowerBound(1,2) = %+v, want exponent 4", lb)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) accepted")
	}
}

func TestClientServerFacade(t *testing.T) {
	cs, err := NewClientServer(
		[][]Register{{"a", "c"}, {"a"}, {"b"}, {"b", "c"}},
		[][]ReplicaID{{1, 2}, {3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ServerEntries(0) == 0 || cs.ClientEntries(0) == 0 {
		t.Error("empty timestamp dimensions")
	}
	rep, err := cs.Simulate([][]ClientOp{
		{{Reg: "a"}, {Reg: "b"}},
		{{Reg: "c"}, {Reg: "c", IsRead: true}},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("client-server run not clean: %+v", rep)
	}
	if rep.Requests != 4 || rep.Responses != 4 {
		t.Errorf("requests/responses = %d/%d", rep.Requests, rep.Responses)
	}
	if _, err := NewClientServer(nil, nil); err == nil {
		t.Error("empty stores accepted")
	}
	if _, err := NewClientServer([][]Register{{"a"}}, [][]ReplicaID{{9}}); err == nil {
		t.Error("invalid client assignment accepted")
	}
}

func TestLiveClientServerFacade(t *testing.T) {
	cs, err := NewClientServer(
		[][]Register{{"a", "c"}, {"a"}, {"b"}, {"b", "c"}},
		[][]ReplicaID{{1, 2}, {3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	live := cs.Live()
	defer live.Close()
	alice := live.Client(0)
	bob := live.Client(1)
	if err := alice.Write("a", 7); err != nil {
		t.Fatal(err)
	}
	if err := alice.Write("b", 8); err != nil {
		t.Fatal(err)
	}
	if err := bob.Write("c", 9); err != nil {
		t.Fatal(err)
	}
	if v, err := bob.Read("c"); err != nil || v != 9 {
		t.Fatalf("Read(c) = (%d, %v), want 9", v, err)
	}
	live.Sync()
	if err := live.Check(); err != nil {
		t.Error(err)
	}
}

// ringStores builds the Figure 13 ring placement as facade input:
// replica i shares ring<i> with replica (i+1) mod n, plus a private
// register each.
func ringStores(n int) [][]Register {
	stores := make([][]Register, n)
	for i := 0; i < n; i++ {
		prev := (i - 1 + n) % n
		stores[i] = []Register{
			Register(fmt.Sprintf("ring%d", prev)),
			Register(fmt.Sprintf("ring%d", i)),
			Register(fmt.Sprintf("priv%d", i)),
		}
	}
	return stores
}

// TestOptimizeAndReconfigure drives the whole facade loop: search a
// better placement for a ring, switch a live mid-run cluster onto it,
// and check causal consistency plus value survival across the fence.
func TestOptimizeAndReconfigure(t *testing.T) {
	sys, err := New(ringStores(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Optimize(OptimizeOptions{Seed: 1, CheckBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries >= res.BaseEntries {
		t.Fatalf("Optimize found no improvement: %d -> %d entries", res.BaseEntries, res.Entries)
	}
	if len(res.Bounds) == 0 || !res.Tight() {
		t.Errorf("lower-bound check: %d bounds, tight=%v", len(res.Bounds), res.Tight())
	}

	cluster, err := sys.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Write(1, "ring1", 11); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Write(3, "priv3", 33); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Reconfigure(res.Placement); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	// The old epoch's values survive the fence and the new epoch keeps
	// serving writes, including broken registers via their relay routes.
	if v, ok := cluster.Read(2, "ring1"); !ok || v != 11 {
		t.Errorf("Read(2, ring1) after reconfigure = (%d,%v), want (11,true)", v, ok)
	}
	for _, x := range sys.Registers() {
		hs := sys.Holders(x)
		if err := cluster.Write(hs[0], x, Value(100+len(x))); err != nil {
			t.Fatalf("post-reconfigure Write(%d, %s): %v", hs[0], x, err)
		}
	}
	cluster.Sync()
	for _, x := range sys.Registers() {
		for _, r := range sys.Holders(x) {
			if v, ok := cluster.Read(r, x); !ok || v != Value(100+len(x)) {
				t.Errorf("Read(%d, %s) = (%d,%v), want (%d,true)", r, x, v, ok, 100+len(x))
			}
		}
	}
	if err := cluster.Check(); err != nil {
		t.Errorf("Check after reconfigure: %v", err)
	}

	// LatencyWeights without LoadAware: all-zero weights, still usable.
	w := cluster.LatencyWeights()
	if got := w(0, 1); got != 0 {
		t.Errorf("unprobed latency weight = %v, want 0", got)
	}
	if err := cluster.Reconfigure(nil); err == nil {
		t.Error("Reconfigure(nil) accepted")
	}
}
