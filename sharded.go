package prcc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/shard"
)

// ShardOptions configures the sharded multi-space runtime. The zero
// value of every field except Spaces selects the documented default.
type ShardOptions struct {
	// Spaces is the number of independent register spaces hosted by one
	// runtime (required, ≥ 1). Every space runs the system's protocol
	// over the system's placement, fully isolated from the others.
	Spaces int
	// Shards is the number of engine inboxes the spaces multiplex onto
	// (default min(Spaces, 4×workers)). Space s routes to shard
	// s mod Shards.
	Shards int
	// Workers is the shared delivery worker-pool size (default
	// GOMAXPROCS, at least 2) — the whole point of sharding is that this
	// does NOT scale with Spaces.
	Workers int
	// InboxCapacity bounds each shard's inbox in batches (default
	// 1024). Writes block while their shard's inbox is full.
	InboxCapacity int
	// FlushSize is the envelope count that flushes a staged batch
	// (default 32); 1 disables batching.
	FlushSize int
	// FlushInterval bounds how long a partial batch may sit staged
	// before the idle flusher pushes it (default 1ms).
	FlushInterval time.Duration
	// Seed drives the engine's per-inbox delivery shuffles.
	Seed int64
	// Audit arms one causality oracle per space. Unlike Cluster, the
	// default is off: at thousands of spaces the oracles dominate
	// memory, and the sharded↔independent differential test pins the
	// runtime against audited single-space runs instead.
	Audit bool
	// Metrics arms the observability registry: per-replica delivery and
	// stall counters, per-edge traffic attribution (aggregated across
	// spaces), and per-shard queue gauges, readable via
	// ShardedSystem.Metrics. Disarmed (the default) the instrumentation
	// is a nil check on the batch path.
	Metrics bool
}

// Sharded starts a sharded runtime hosting the given number of
// independent spaces of this system with default options.
func (s *System) Sharded(spaces int) (*ShardedSystem, error) {
	return s.ShardedWith(ShardOptions{Spaces: spaces})
}

// ShardedWith starts a sharded runtime with explicit options.
func (s *System) ShardedWith(opts ShardOptions) (*ShardedSystem, error) {
	r, err := shard.New(s.graph, s.protocol, shard.Options{
		Spaces:        opts.Spaces,
		Shards:        opts.Shards,
		Workers:       opts.Workers,
		InboxCapacity: opts.InboxCapacity,
		FlushSize:     opts.FlushSize,
		FlushInterval: opts.FlushInterval,
		Seed:          opts.Seed,
		Audit:         opts.Audit,
		Metrics:       opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &ShardedSystem{inner: r}, nil
}

// ShardedSystem hosts many independent instances ("spaces") of one
// System multiplexed over a single shared worker pool: registers are
// addressed by (space, replica, register), space s routes to engine
// shard s mod Shards, and outgoing update fanouts are batched per shard
// before entering the engine. See the package documentation's "Sharding
// and batching" section for the design.
type ShardedSystem struct {
	inner *shard.Runtime
}

// Spaces returns the number of hosted register spaces.
func (s *ShardedSystem) Spaces() int { return s.inner.Spaces() }

// Shards returns the number of engine inboxes spaces multiplex onto.
func (s *ShardedSystem) Shards() int { return s.inner.Shards() }

// Workers returns the shared delivery worker-pool size.
func (s *ShardedSystem) Workers() int { return s.inner.Workers() }

// Key renders the routing key "s<space>/<register>" for a register of
// one space; Resolve inverts it.
func (s *ShardedSystem) Key(space int, x Register) string {
	return s.inner.Router().Key(space, x)
}

// Resolve parses a routing key back to its (space, shard, register)
// route.
func (s *ShardedSystem) Resolve(key string) (space, shardID int, x Register, err error) {
	route, err := s.inner.Router().Resolve(key)
	if err != nil {
		return 0, 0, "", fmt.Errorf("prcc: %w", err)
	}
	return route.Space, route.Shard, route.Reg, nil
}

// Write performs a client write at replica r of the given space. It
// fails if r does not store x, the space is out of range, or the runtime
// is closed. Writes block while the space's shard inbox is full — the
// same backpressure contract as Cluster.Write.
func (s *ShardedSystem) Write(space int, r ReplicaID, x Register, v Value) error {
	return s.inner.Write(space, r, x, v)
}

// Read returns replica r's local copy of x in the given space.
func (s *ShardedSystem) Read(space int, r ReplicaID, x Register) (Value, bool) {
	return s.inner.Read(space, r, x)
}

// Sync blocks until every staged batch has been flushed and every
// in-flight batch delivered and applied, across all spaces.
func (s *ShardedSystem) Sync() { s.inner.Quiesce() }

// Check audits every space's execution against its causality oracle and
// returns an error describing the violations, if any. On a runtime
// built without ShardOptions.Audit there are no oracles and Check
// reports nothing.
func (s *ShardedSystem) Check() error {
	vs := s.inner.AuditViolations()
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(vs))
	for _, v := range vs {
		msgs = append(msgs, v.String())
	}
	return fmt.Errorf("prcc: %d violations: %s", len(vs), strings.Join(msgs, "; "))
}

// Snapshot returns one space's per-replica register contents — the same
// shape Cluster-level state snapshots use, so a space can be compared
// against an independent single-space run.
func (s *ShardedSystem) Snapshot(space int) []map[Register]Value {
	return s.inner.StateSnapshot(space)
}

// Metrics returns the runtime's unified metrics snapshot: batching
// totals always, per-replica and per-shard breakdowns when
// ShardOptions.Metrics armed the registry. Replica counters aggregate
// across spaces (all spaces share one placement, so replica i means
// "replica i of every space"); queue gauges are per engine shard.
func (s *ShardedSystem) Metrics() Metrics { return s.inner.Metrics() }

// Stats reports the batching efficiency counters: engine messages
// (batches pushed), envelopes carried, and metadata bytes copied.
//
// Deprecated: use Metrics, whose Batches, Envelopes and MetaBytes
// fields carry the same totals in the unified cross-runtime snapshot
// schema.
func (s *ShardedSystem) Stats() (batches, envelopes, metaBytes int64) {
	m := s.Metrics()
	return m.Batches, m.Envelopes, m.MetaBytes
}

// Close flushes staged batches, drains the engine and stops the shared
// worker pool; no goroutines outlive it. Idempotent.
func (s *ShardedSystem) Close() { s.inner.Close() }
