package main

import "testing"

// TestExperimentsRun executes every experiment section end to end (the
// same code path that regenerates EXPERIMENTS.md).
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnly(t *testing.T) {
	if err := run([]string{"-only", "E1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "e13"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
