// Command prcc-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one section per experiment in DESIGN.md's index
// (structural checks for the paper's worked figures, consistency sweeps,
// lower-bound tightness, compression, and the Appendix D trade-offs).
//
// Usage:
//
//	prcc-bench              # run every experiment
//	prcc-bench -only E13    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/causality"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-bench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	fn    func() error
}

func run(args []string) error {
	fs := flag.NewFlagSet("prcc-bench", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment by id (e.g. E13)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments := []experiment{
		{"E1", "Figure 3 share graph construction", e1},
		{"E2", "Figure 5 loop classification and timestamp-graph asymmetry", e2},
		{"E3", "Hélary–Milani counterexample 1 (Definition 18 too strong)", e3},
		{"E4", "Hélary–Milani counterexample 2 (Definition 20 too weak)", e4},
		{"E6", "Consistency sweep: protocol × topology under adversarial schedules", e6},
		{"E8", "Lower-bound tightness on trees (2·N_i·log m bits)", e8},
		{"E9", "Lower-bound tightness on cycles (2n·log m bits)", e9},
		{"E11", "Timestamp compression across replication factors", e11},
		{"E12", "Dummy registers: metadata vs messages vs false dependencies", e12},
		{"E13", "Ring breaking (Figure 13): counters vs relay cost", e13},
		{"E15", "Metadata comparison across protocols", e15},
		{"E16", "l-hop truncation: savings and safety loss", e16},
	}
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("## %s — %s\n\n", e.id, e.title)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println()
	}
	return nil
}

func check(name string, ok bool) {
	status := "PASS"
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("| %s | %s |\n", name, status)
}

func e1() error {
	g := sharegraph.Fig3Example()
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	check("edges exactly {01,12,23} (paper {12,23,34})", g.NumUndirectedEdges() == 3 &&
		g.HasEdge(sharegraph.Edge{From: 0, To: 1}) && g.HasEdge(sharegraph.Edge{From: 1, To: 2}) &&
		g.HasEdge(sharegraph.Edge{From: 2, To: 3}) && !g.HasEdge(sharegraph.Edge{From: 0, To: 3}))
	check("X23 = {y} (zero-based Shared(1,2))", g.Shared(1, 2).Equal(sharegraph.NewRegisterSet("y")))
	check("X14 = ∅ (zero-based Shared(0,3))", g.Shared(0, 3) == nil)
	return nil
}

func e2() error {
	g := sharegraph.Fig5Example()
	ts := sharegraph.BuildTSGraph(g, 0, sharegraph.LoopOptions{})
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	check("(1,2,3,4) is a (1,e43)-loop", g.IsIEJKLoop(sharegraph.Loop{I: 0, L: []sharegraph.ReplicaID{1, 2}, R: []sharegraph.ReplicaID{3}}))
	check("(1,4,3,2) is NOT a (1,e34)-loop", !g.IsIEJKLoop(sharegraph.Loop{I: 0, L: []sharegraph.ReplicaID{3}, R: []sharegraph.ReplicaID{2, 1}}))
	check("e43 ∈ G_1, e34 ∉ G_1 (asymmetric tracking)", ts.Has(sharegraph.Edge{From: 3, To: 2}) && !ts.Has(sharegraph.Edge{From: 2, To: 3}))
	check("e32 ∈ G_1, e23 ∉ G_1", ts.Has(sharegraph.Edge{From: 2, To: 1}) && !ts.Has(sharegraph.Edge{From: 1, To: 2}))
	return nil
}

func e3() error {
	g, roles := sharegraph.HelaryMilani1()
	hoop := []sharegraph.ReplicaID{roles.J, roles.B1, roles.B2, roles.I, roles.A1, roles.A2, roles.K}
	ts := sharegraph.BuildTSGraph(g, roles.I, sharegraph.LoopOptions{})
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	check("loop is a minimal x-hoop under Definition 18", g.IsMinimalXHoop("x", hoop, sharegraph.Original))
	check("yet e_jk ∉ G_i and e_kj ∉ G_i (Theorem 8 does not require them)",
		!ts.Has(sharegraph.Edge{From: roles.J, To: roles.K}) && !ts.Has(sharegraph.Edge{From: roles.K, To: roles.J}))
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{Graph: g, Protocol: p,
		Script: workload.SharedOnly(g, 150, 1), Sched: transport.NewRandom(7), TrackFalseDeps: true})
	if err != nil {
		return err
	}
	check("algorithm consistent on this graph without tracking x at i", res.Ok() && res.FalseDepUpdates == 0)
	return nil
}

func e4() error {
	g, roles := sharegraph.HelaryMilani2()
	hoop := []sharegraph.ReplicaID{roles.J, roles.B1, roles.B2, roles.I, roles.A1, roles.A2, roles.K}
	ts := sharegraph.BuildTSGraph(g, roles.I, sharegraph.LoopOptions{})
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	check("loop is NOT a minimal x-hoop under modified Definition 20", !g.IsMinimalXHoop("x", hoop, sharegraph.Modified))
	check("yet Theorem 8 requires e_kj ∈ G_i", ts.Has(sharegraph.Edge{From: roles.K, To: roles.J}))
	return nil
}

func e6() error {
	topologies := []string{"fig3", "fig5", "hm1", "ring", "clique", "grid", "fullrep"}
	fmt.Println("| topology | edge-indexed | matrix | dummy-broadcast | naive-vector | fifo-only |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, name := range topologies {
		g, err := cli.Topology(name, 5, 1)
		if err != nil {
			return err
		}
		row := []string{name}
		for _, pn := range []string{"edge-indexed", "matrix", "dummy-broadcast", "naive-vector", "fifo-only"} {
			verdict := verdictSweep(g, pn)
			row = append(row, verdict)
		}
		fmt.Printf("| %s |\n", strings.Join(row, " | "))
	}
	return nil
}

// verdictSweep classifies a protocol's behaviour across 12 random seeds.
func verdictSweep(g *sharegraph.Graph, protoName string) string {
	script := workload.SharedOnly(g, 150, 2)
	safety, liveness := false, false
	for seed := int64(0); seed < 12; seed++ {
		p, err := cli.Protocol(protoName, g)
		if err != nil {
			return "error"
		}
		res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: transport.NewRandom(seed)})
		if err != nil {
			return "error"
		}
		for _, v := range res.Violations {
			switch v.Kind {
			case causality.SafetyViolation:
				safety = true
			case causality.LivenessViolation:
				liveness = true
			}
		}
	}
	switch {
	case safety:
		return "UNSAFE"
	case liveness:
		return "not live"
	default:
		return "ok"
	}
}

func e8() error {
	fmt.Println("| graph | replica | exponent (lower bound) | algorithm counters | tight |")
	fmt.Println("|---|---|---|---|---|")
	graphs := map[string]*sharegraph.Graph{"line5": sharegraph.Line(5), "star5": sharegraph.Star(5)}
	for name, g := range graphs {
		for i := 0; i < g.NumReplicas(); i++ {
			b := lowerbound.ComputeBound(g, sharegraph.ReplicaID(i), 2)
			fmt.Printf("| %s | %d | m^%d (%.0f bits at m=2) | %d | %v |\n",
				name, i, b.Exponent, b.Bits(), b.AlgorithmEntries, b.Tight())
		}
	}
	return nil
}

func e9() error {
	fmt.Println("| n | closed form 2n | measured exponent | algorithm counters | tight |")
	fmt.Println("|---|---|---|---|---|")
	for _, n := range []int{3, 4, 5} {
		g := sharegraph.Ring(n)
		b := lowerbound.ComputeBound(g, 0, 2)
		fmt.Printf("| %d | %d | %d | %d | %v |\n",
			n, lowerbound.CycleClosedForm(n), b.Exponent, b.AlgorithmEntries, b.Tight())
	}
	return nil
}

func e11() error {
	fmt.Println("| graph | entries | compressed | ratio |")
	fmt.Println("|---|---|---|---|")
	rows := []struct {
		name string
		g    *sharegraph.Graph
	}{
		{"fullrep R=5", sharegraph.FullReplication(5, 3)},
		{"pair-clique R=5", sharegraph.PairClique(5)},
		{"ring 6", sharegraph.Ring(6)},
		{"random k=2", sharegraph.RandomK(8, 24, 2, 5)},
		{"random k=3", sharegraph.RandomK(8, 24, 3, 5)},
		{"random k=4", sharegraph.RandomK(8, 24, 4, 5)},
		// Dense 32-replica row, untruncated: buildable in milliseconds
		// since the exact loop engine replaced the enumerating DFS.
		{"random k=3 R=32 exact", sharegraph.RandomK(32, 96, 3, 7)},
	}
	for _, row := range rows {
		reports := optimize.AnalyzeAll(row.g, sharegraph.BuildAllTSGraphs(row.g, sharegraph.LoopOptions{}))
		e, c := optimize.TotalEntries(reports), optimize.TotalCompressed(reports)
		fmt.Printf("| %s | %d | %d | %.2f |\n", row.name, e, c, float64(c)/float64(e))
	}
	return nil
}

func e12() error {
	g := sharegraph.Ring(6)
	script := workload.SharedOnly(g, 300, 3)
	fmt.Println("| variant | max entries/replica | messages | meta-only | false deps |")
	fmt.Println("|---|---|---|---|---|")
	base, err := core.NewEdgeIndexed(g)
	if err != nil {
		return err
	}
	full, err := optimize.FullEmulationPlan(g).Protocol("full-emulation")
	if err != nil {
		return err
	}
	for _, p := range []core.Protocol{base, full} {
		res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script,
			Sched: transport.NewRandom(4), TrackFalseDeps: true})
		if err != nil {
			return err
		}
		if !res.Ok() {
			return fmt.Errorf("%s: violations %v", p.Name(), res.Violations)
		}
		maxE := 0
		for _, e := range res.MetadataEntriesPerReplica {
			if e > maxE {
				maxE = e
			}
		}
		fmt.Printf("| %s | %d | %d | %d | %d |\n",
			p.Name(), maxE, res.MessagesSent, res.MetaOnlyMessages, res.FalseDepUpdates)
	}
	return nil
}

func e13() error {
	fmt.Println("| n | ring counters/replica | broken counters (max) | ring msgs | broken msgs | ring B/msg | broken B/msg | ring delay | broken delay |")
	fmt.Println("|---|---|---|---|---|---|---|---|---|")
	for _, n := range []int{4, 6, 8, 10} {
		ring := sharegraph.Ring(n)
		ringProto, err := core.NewEdgeIndexed(ring)
		if err != nil {
			return err
		}
		broken, err := optimize.BreakRing(n)
		if err != nil {
			return err
		}
		script := workload.SharedOnly(ring, 200, 9)
		var msgs [2]int
		var avg, delay [2]float64
		var brokenMax int
		for pi, p := range []core.Protocol{ringProto, broken} {
			res, err := sim.Run(sim.Config{Graph: ring, Protocol: p, Script: script, Sched: transport.NewRandom(2)})
			if err != nil {
				return err
			}
			if !res.Ok() {
				return fmt.Errorf("n=%d %s: %v", n, p.Name(), res.Violations)
			}
			msgs[pi] = res.MessagesSent
			avg[pi] = res.AvgMetaBytes()
			delay[pi] = res.AvgDeliveryDelay()
			if pi == 1 {
				for _, e := range res.MetadataEntriesPerReplica {
					if e > brokenMax {
						brokenMax = e
					}
				}
			}
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %.1f | %.1f | %.1f | %.1f |\n",
			n, 2*n, brokenMax, msgs[0], msgs[1], avg[0], avg[1], delay[0], delay[1])
	}
	return nil
}

func e15() error {
	fmt.Println("| topology | protocol | total entries | msgs | meta B/msg | verdict |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, tn := range []string{"ring", "grid", "clique", "random"} {
		g, err := cli.Topology(tn, 8, 3)
		if err != nil {
			return err
		}
		script := workload.SharedOnly(g, 300, 6)
		for _, pn := range []string{"edge-indexed", "matrix", "dummy-broadcast"} {
			p, err := cli.Protocol(pn, g)
			if err != nil {
				return err
			}
			res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: transport.NewRandom(8)})
			if err != nil {
				return err
			}
			verdict := "ok"
			if !res.Ok() {
				verdict = "FAIL"
			}
			fmt.Printf("| %s R=%d | %s | %d | %d | %.1f | %s |\n",
				tn, g.NumReplicas(), pn, res.TotalMetadataEntries(), res.MessagesSent, res.AvgMetaBytes(), verdict)
		}
	}
	return nil
}

func e16() error {
	fmt.Println("| graph | hop bound l | entries (truncated/exact) | consistent under adversary |")
	fmt.Println("|---|---|---|---|")
	for _, n := range []int{5, 6} {
		g := sharegraph.Ring(n)
		for _, l := range []int{3, n - 1} {
			tr, exact := optimize.TruncationSavings(g, l)
			verdict := "yes"
			if tr < exact {
				verdict = "NO (loop counters dropped; staged chain violates safety)"
			}
			fmt.Printf("| ring %d | %d | %d/%d | %s |\n", n, l, tr, exact, verdict)
		}
	}
	return nil
}
