package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTrendAgainstCheckedInCaptures runs the tool over the repository's
// real capture history: PR numbering has a gap (no BENCH_PR7.json — that
// PR changed no benchmarks), captures span machines, and early captures
// lack rows that exist today. The trajectory table must absorb all of
// that.
func TestTrendAgainstCheckedInCaptures(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-filter", "^BenchmarkScaleDelivery/", "../.."}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PR1", "PR8", "BenchmarkScaleDelivery/ring64_50k/random"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PR7") {
		t.Errorf("PR7 column rendered despite no BENCH_PR7.json capture:\n%s", out)
	}
	// Both default metric tables render.
	if !strings.Contains(out, "ns/op") || !strings.Contains(out, "B/op") {
		t.Errorf("expected ns/op and B/op tables:\n%s", out)
	}
}

// TestTrendSyntheticHistory pins cell-level behavior on a controlled
// two-capture history: a benchmark missing from one capture renders "-",
// values land in PR order, and differing capture CPUs produce the
// comparability note.
func TestTrendSyntheticHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_PR2.json", `[{"name":"_env","cpu":"cpuA"},
{"name":"BenchmarkOld","iterations":10,"ns/op":100,"B/op":64}]`)
	write("BENCH_PR5.json", `[{"name":"_env","cpu":"cpuB"},
{"name":"BenchmarkOld","iterations":10,"ns/op":90,"B/op":64},
{"name":"BenchmarkNew","iterations":10,"ns/op":42.5,"B/op":0}]`)
	write("not_a_capture.json", `[]`)

	var sb strings.Builder
	if err := run([]string{dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"PR2", "PR5",
		"BenchmarkOld", "BenchmarkNew",
		"42.5", // float survives formatting
		"-",    // BenchmarkNew has no PR2 cell
		"note: captures span multiple CPUs",
		"cpuA", "cpuB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// A single-metric request renders only that table.
	sb.Reset()
	if err := run([]string{"-metric", "B/op", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "ns/op") {
		t.Errorf("-metric B/op still rendered the ns/op table:\n%s", sb.String())
	}

	// An unmatched filter is an explicit error, not an empty table.
	if err := run([]string{"-filter", "NoSuchBenchmark", dir}, &strings.Builder{}); err == nil {
		t.Error("unmatched -filter did not error")
	}

	// A directory without captures is an explicit error too.
	if err := run([]string{t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("captureless directory did not error")
	}
}
