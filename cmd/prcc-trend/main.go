// Command prcc-trend renders the benchmark trajectory across the
// repository's checked-in capture history: every BENCH_PR<n>.json in a
// directory becomes one column, every selected benchmark one row, and
// the table shows how ns/op and B/op moved PR by PR.
//
// Usage:
//
//	prcc-trend                       # captures in the current directory
//	prcc-trend -filter 'ring64' .    # only matching benchmark rows
//	prcc-trend -metric B/op ~/repo   # a single metric table
//
// Capture numbering may have gaps (a PR that changed no benchmarks
// captures nothing); missing files are simply absent columns, and a
// benchmark absent from one capture renders as "-" in that cell.
// Wall-clock numbers are only comparable between captures taken on the
// same hardware: when the capture CPUs differ the tool prints each
// column's CPU so a ns/op step can be told apart from a machine change
// (B/op is deterministic for the seeded runs and always comparable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-trend:", err)
		os.Exit(1)
	}
}

// capture is one BENCH_PR<n>.json file: its PR number, capture CPU, and
// benchmark rows keyed by name.
type capture struct {
	pr   int
	cpu  string
	rows map[string]map[string]float64
}

var prFile = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// discover lists the capture files under dir in PR order.
func discover(dir string) ([]string, []int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type hit struct {
		pr   int
		path string
	}
	var hits []hit
	for _, e := range entries {
		m := prFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		hits = append(hits, hit{pr: pr, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pr < hits[j].pr })
	paths := make([]string, len(hits))
	prs := make([]int, len(hits))
	for i, h := range hits {
		paths[i] = h.path
		prs[i] = h.pr
	}
	return paths, prs, nil
}

// loadCapture reads one capture file into row form.
func loadCapture(path string, pr int) (capture, error) {
	entries, cpu, err := bench.Load(path)
	if err != nil {
		return capture{}, err
	}
	c := capture{pr: pr, cpu: cpu, rows: make(map[string]map[string]float64, len(entries))}
	for _, e := range entries {
		c.rows[e.Name] = e.Metrics
	}
	return c, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prcc-trend", flag.ContinueOnError)
	filter := fs.String("filter", "", "regexp selecting benchmark rows (default: all)")
	metrics := fs.String("metric", "ns/op,B/op", "comma-separated metrics to tabulate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		dir = fs.Arg(0)
	default:
		fs.Usage()
		return fmt.Errorf("expected at most one directory argument, got %v", fs.Args())
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}

	paths, prs, err := discover(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_PR<n>.json captures in %s", dir)
	}
	captures := make([]capture, len(paths))
	for i, p := range paths {
		if captures[i], err = loadCapture(p, prs[i]); err != nil {
			return err
		}
	}

	// Row universe: union of benchmark names across every capture, so a
	// benchmark added or retired mid-history still shows its partial
	// trajectory.
	seen := map[string]bool{}
	var names []string
	for _, c := range captures {
		for name := range c.rows {
			if seen[name] || (re != nil && !re.MatchString(name)) {
				continue
			}
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks match -filter %q", *filter)
	}

	for i, metric := range strings.Split(*metrics, ",") {
		metric = strings.TrimSpace(metric)
		if metric == "" {
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		renderTable(out, metric, names, captures)
	}

	// ns/op comparisons across machines are noise; surface the capture
	// CPUs whenever the history spans more than one.
	cpus := map[string]bool{}
	for _, c := range captures {
		cpus[c.cpu] = true
	}
	if len(cpus) > 1 {
		fmt.Fprintln(out)
		fmt.Fprintln(out, "note: captures span multiple CPUs; ns/op is only comparable within one machine:")
		for _, c := range captures {
			cpu := c.cpu
			if cpu == "" {
				cpu = "(unrecorded)"
			}
			fmt.Fprintf(out, "  PR%-3d %s\n", c.pr, cpu)
		}
	}
	return nil
}

// renderTable prints one metric's trajectory: benchmarks down, capture
// PRs across.
func renderTable(out io.Writer, metric string, names []string, captures []capture) {
	header := make([]string, 0, len(captures)+1)
	header = append(header, metric)
	for _, c := range captures {
		header = append(header, fmt.Sprintf("PR%d", c.pr))
	}
	grid := [][]string{header}
	for _, name := range names {
		row := []string{name}
		for _, c := range captures {
			cell := "-"
			if m, ok := c.rows[name]; ok {
				if v, ok := m[metric]; ok {
					cell = formatValue(v)
				}
			}
			row = append(row, cell)
		}
		grid = append(grid, row)
	}

	widths := make([]int, len(header))
	for _, row := range grid {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range grid {
		var sb strings.Builder
		for i, cell := range row {
			if i == 0 {
				sb.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
			} else {
				sb.WriteString(fmt.Sprintf("  %*s", widths[i], cell))
			}
		}
		fmt.Fprintln(out, strings.TrimRight(sb.String(), " "))
	}
}

// formatValue renders a metric value compactly: integers plain, large
// values without spurious precision, small ones with enough.
func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case v >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
