package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `[
{"name":"_env","cpu":"TestCPU @ 2.10GHz"},
{"name":"BenchmarkScaleDelivery/ring64_50k/random","iterations":3,"ns/op":300000000,"ops/s":150000,"B/op":40000000,"allocs/op":100000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","iterations":100,"ns/op":10000000,"B/op":4000000,"allocs/op":12000},
{"name":"BenchmarkE1ShareGraphBuild","iterations":5000,"ns/op":200000,"B/op":90000,"allocs/op":900}
]`

// sameCPU prefixes candidate fixtures so ns/op gating is in effect.
const sameCPU = `{"name":"_env","cpu":"TestCPU @ 2.10GHz"},`

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	// 20% slower and 10% more bytes: inside the 25% gate.
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring64_50k/random","iterations":3,"ns/op":360000000,"B/op":44000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","iterations":100,"ns/op":9000000,"B/op":4000000}
]`)
	var out strings.Builder
	if err := run([]string{base, cand}, &out); err != nil {
		t.Fatalf("within-threshold candidate rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within thresholds") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	for _, tc := range []struct {
		name, cand, want string
	}{
		{"ns regression", `[
` + sameCPU + `
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":400000000,"B/op":40000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000}
]`, "ns/op"},
		{"bytes regression", `[
` + sameCPU + `
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":300000000,"B/op":60000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000}
]`, "B/op"},
	} {
		cand := writeJSON(t, dir, "cand.json", tc.cand)
		var out strings.Builder
		err := run([]string{base, cand}, &out)
		if err == nil {
			t.Fatalf("%s: not rejected\n%s", tc.name, out.String())
		}
		if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), tc.want) {
			t.Errorf("%s: regression not named:\n%s", tc.name, out.String())
		}
	}
}

func TestGateFailsOnMissingScaleBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000}
]`)
	if err := run([]string{base, cand}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "missing from candidate") {
		t.Fatalf("dropped scale benchmark not rejected: %v", err)
	}
}

func TestGateFailsOnMissingGatedMetric(t *testing.T) {
	// A candidate entry that lacks a gated metric the baseline records
	// (e.g. a capture run without -benchmem) must fail loudly rather than
	// read the metric as 0 and pass as "improved".
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":300000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000}
]`)
	err := run([]string{base, cand}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "lacks it") {
		t.Fatalf("candidate without B/op not rejected: %v", err)
	}
}

func TestGateIgnoresUnfilteredAndAllowsNew(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	// E1 regresses wildly but is outside the scale filter; a brand-new
	// scale case has no baseline and is reported, not gated.
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":300000000,"B/op":40000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000},
{"name":"BenchmarkScaleDelivery/ring64_100k/random","ns/op":700000000,"B/op":90000000},
{"name":"BenchmarkE1ShareGraphBuild","ns/op":900000000,"B/op":900000000}
]`)
	var out strings.Builder
	if err := run([]string{base, cand}, &out); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ring64_100k") {
		t.Errorf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCustomFilterAndThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkE1ShareGraphBuild","ns/op":220000,"B/op":90000}
]`)
	// Gate E1 with a tight 5% threshold: 10% slower must fail.
	err := run([]string{"-filter", "^BenchmarkE1", "-ns-threshold", "1.05", base, cand}, &strings.Builder{})
	if err == nil {
		t.Fatal("tight threshold did not reject a 10% slowdown")
	}
}

func TestGOMAXPROCSSuffixNormalized(t *testing.T) {
	// go test names benchmarks "Foo-4" on a 4-CPU machine; a CI capture
	// must still match a suffix-free checked-in baseline.
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring64_50k/random-4","ns/op":300000000,"B/op":40000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random-4","ns/op":10000000,"B/op":4000000}
]`)
	var out strings.Builder
	if err := run([]string{base, cand}, &out); err != nil {
		t.Fatalf("suffixed candidate names did not match baseline: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "new ") {
		t.Errorf("suffixed names treated as new benchmarks:\n%s", out.String())
	}
}

func TestCrossHardwareGatesBytesOnly(t *testing.T) {
	// Different capture CPUs: a wall-clock "regression" must not fail
	// the gate (timings are not comparable), but a B/op regression —
	// deterministic for the seeded runs — still must.
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	slower := writeJSON(t, dir, "slower.json", `[
{"name":"_env","cpu":"OtherCPU @ 1.00GHz"},
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":900000000,"B/op":40000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":30000000,"B/op":4000000}
]`)
	var out strings.Builder
	if err := run([]string{base, slower}, &out); err != nil {
		t.Fatalf("cross-hardware slowdown failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ns/op not gated") {
		t.Errorf("missing cross-hardware note:\n%s", out.String())
	}
	fatter := writeJSON(t, dir, "fatter.json", `[
{"name":"_env","cpu":"OtherCPU @ 1.00GHz"},
{"name":"BenchmarkScaleDelivery/ring64_50k/random","ns/op":300000000,"B/op":90000000},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000}
]`)
	if err := run([]string{base, fatter}, &strings.Builder{}); err == nil {
		t.Fatal("cross-hardware B/op regression not rejected")
	}
}

func TestTextEmission(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baselineJSON)
	var out strings.Builder
	if err := run([]string{"-text", base}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkScaleDelivery/ring64_50k/random",
		"ns/op", "B/op", "allocs/op",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// ns/op must precede B/op on each line for benchstat.
	line := strings.SplitN(text, "\n", 2)[0]
	if strings.Index(line, "ns/op") > strings.Index(line, "B/op") {
		t.Errorf("metric order wrong: %s", line)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	dir := t.TempDir()
	good := writeJSON(t, dir, "good.json", baselineJSON)
	bad := writeJSON(t, dir, "bad.json", `{"not":"an array"}`)
	if err := run([]string{good, bad}, &strings.Builder{}); err == nil {
		t.Error("malformed candidate accepted")
	}
	if err := run([]string{good}, &strings.Builder{}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"-filter", "^BenchmarkNothingMatches", good, good}, &strings.Builder{}); err == nil {
		t.Error("empty comparison accepted")
	}
}

// TestThroughputSplitTransition pins the default filter across the
// BenchmarkClusterThroughput base/chaos split: a pre-split baseline's
// slash-less row is neither gated nor counted as shrunk coverage, the
// new /base row arrives ungated as "new", and the /chaos row stays
// outside the gate even when it is far slower than everything else.
func TestThroughputSplitTransition(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
{"name":"_env","cpu":"TestCPU @ 2.10GHz"},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000},
{"name":"BenchmarkClusterThroughput","ns/op":20000000,"B/op":9000000}
]`)
	cand := writeJSON(t, dir, "cand.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000},
{"name":"BenchmarkClusterThroughput/base","ns/op":21000000,"B/op":9000000},
{"name":"BenchmarkClusterThroughput/chaos","ns/op":90000000,"B/op":90000000}
]`)
	var out strings.Builder
	if err := run([]string{base, cand}, &out); err != nil {
		t.Fatalf("transition capture rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new       BenchmarkClusterThroughput/base") {
		t.Errorf("/base not reported as new:\n%s", out.String())
	}
	if strings.Contains(out.String(), "chaos") {
		t.Errorf("/chaos row leaked into the gate:\n%s", out.String())
	}

	// Once a split baseline exists, /base is gated like any scale row.
	base2 := writeJSON(t, dir, "base2.json", `[
{"name":"_env","cpu":"TestCPU @ 2.10GHz"},
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000},
{"name":"BenchmarkClusterThroughput/base","ns/op":20000000,"B/op":9000000}
]`)
	cand2 := writeJSON(t, dir, "cand2.json", `[
`+sameCPU+`
{"name":"BenchmarkScaleDelivery/ring32_5k/random","ns/op":10000000,"B/op":4000000},
{"name":"BenchmarkClusterThroughput/base","ns/op":30000000,"B/op":9000000}
]`)
	err := run([]string{base2, cand2}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gated /base regression not caught: %v", err)
	}
}
