// Command prcc-benchgate enforces the repository's benchmark-regression
// gate: it compares a freshly captured scripts/bench.sh JSON file against
// the checked-in baseline (the latest BENCH_PR<n>.json) and fails when a
// scale benchmark regressed beyond the allowed threshold in ns/op or
// B/op.
//
// Usage:
//
//	prcc-benchgate baseline.json candidate.json   # gate (exit 1 on regression)
//	prcc-benchgate -filter 'ring64' old.json new.json
//	prcc-benchgate -text results.json             # emit go-bench text for benchstat
//
// B/op is deterministic for the simulator's seeded runs and is always
// gated. ns/op is only meaningful between runs on the same hardware, so
// it is gated exactly when both files record the same capture CPU (the
// "_env" entry scripts/bench.sh emits); across different machines the
// tool prints a note and gates B/op alone instead of false-failing on
// hardware differences. The -text mode converts a captured JSON file
// back into `go test -bench` text so benchstat can render a
// human-readable comparison next to the gate's verdict.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-benchgate:", err)
		os.Exit(1)
	}
}

// The capture loader is shared with cmd/prcc-trend via internal/bench;
// an entry carries every numeric metric the bench.sh awk conversion
// captured (ns/op, B/op, allocs/op, ops/s, ...).

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prcc-benchgate", flag.ContinueOnError)
	// BenchmarkClusterThroughput/base joins the scale gate so the fault-
	// injection hooks provably cost nothing while disarmed; the /chaos
	// row and older captures' slash-less BenchmarkClusterThroughput rows
	// are intentionally outside the filter (chaos cost is informational,
	// and pre-split baselines must not trip the coverage-shrink check).
	// BenchmarkShardedThroughput's sharded rows gate the multi-space
	// runtime; its /seq1k row matches the filter too, keeping the
	// architectural baseline itself from silently regressing.
	// BenchmarkMetricsOverhead/disarmed gates the observability hooks the
	// same way the /base row gates the chaos hooks: a disarmed registry
	// must stay one nil check, so its B/op must never grow. The /armed
	// row is informational — armed cost is a documented trade, not a
	// regression.
	// BenchmarkPlacementSearch gates the placement optimizer: its seeded
	// budget is deterministic (same moves, same evaluation count every
	// run), so ns/op growth means candidate evaluation — the effective-
	// graph timestamp rebuild — got slower, not that the search explored
	// more.
	filter := fs.String("filter", "^BenchmarkScaleDelivery/|^BenchmarkClusterThroughput/base|^BenchmarkShardedThroughput/|^BenchmarkMetricsOverhead/disarmed|^BenchmarkPlacementSearch/", "regexp selecting the gated benchmarks")
	nsThreshold := fs.Float64("ns-threshold", 1.25, "fail when candidate ns/op exceeds baseline by this factor")
	bThreshold := fs.Float64("b-threshold", 1.25, "fail when candidate B/op exceeds baseline by this factor")
	text := fs.Bool("text", false, "convert one JSON file to go-bench text on stdout (for benchstat)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text {
		if fs.NArg() != 1 {
			return fmt.Errorf("-text expects exactly one JSON file")
		}
		entries, _, err := bench.Load(fs.Arg(0))
		if err != nil {
			return err
		}
		return emitText(out, entries)
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("expected: prcc-benchgate [flags] baseline.json candidate.json")
	}
	re, err := regexp.Compile(*filter)
	if err != nil {
		return fmt.Errorf("bad -filter: %w", err)
	}
	baseline, baseCPU, err := bench.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	candidate, candCPU, err := bench.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	// Wall-clock comparison is only sound on identical hardware; B/op is
	// deterministic for the seeded simulator runs and gates regardless.
	gateNs := baseCPU != "" && strings.TrimSpace(baseCPU) == strings.TrimSpace(candCPU)
	if !gateNs {
		fmt.Fprintf(out, "note: baseline CPU %q vs candidate CPU %q — ns/op not gated, B/op only\n",
			baseCPU, candCPU)
	}
	return compare(out, baseline, candidate, re, *nsThreshold, *bThreshold, gateNs)
}

// emitText renders entries as `go test -bench` lines so benchstat can
// consume them.
func emitText(out io.Writer, entries []bench.Entry) error {
	for _, e := range entries {
		iters := e.Iterations
		if iters == 0 {
			iters = 1
		}
		fmt.Fprintf(out, "%s \t%8d", e.Name, iters)
		for _, k := range e.Order {
			fmt.Fprintf(out, "\t%12g %s", e.Metrics[k], k)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func compare(out io.Writer, baseline, candidate []bench.Entry, re *regexp.Regexp, nsThreshold, bThreshold float64, gateNs bool) error {
	base := make(map[string]bench.Entry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	gated := map[string]float64{"ns/op": nsThreshold, "B/op": bThreshold}
	metrics := []string{"ns/op", "B/op"}
	if !gateNs {
		metrics = []string{"B/op"}
	}
	var regressions []string
	compared := 0
	for _, c := range candidate {
		if !re.MatchString(c.Name) {
			continue
		}
		b, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(out, "new       %-55s (no baseline entry; not gated)\n", c.Name)
			continue
		}
		compared++
		for _, metric := range metrics {
			bv := b.Metrics[metric]
			if bv <= 0 {
				continue
			}
			cv, ok := c.Metrics[metric]
			if !ok {
				// A gated metric recorded in the baseline but absent from
				// the candidate would otherwise read as 0 and pass as
				// "improved" — a capture without -benchmem must not slip
				// an arbitrary regression through the gate.
				return fmt.Errorf("%s: baseline has %s but candidate capture lacks it", c.Name, metric)
			}
			ratio := cv / bv
			status := "ok        "
			if ratio > gated[metric] {
				status = "REGRESSED "
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %.0f -> %.0f (%.2fx > %.2fx allowed)", c.Name, metric, bv, cv, ratio, gated[metric]))
			} else if ratio < 1/gated[metric] {
				status = "improved  "
			}
			fmt.Fprintf(out, "%s%-55s %-9s %14.0f -> %14.0f  (%.2fx)\n", status, c.Name, metric, bv, cv, ratio)
		}
	}
	cand := make(map[string]bool, len(candidate))
	for _, c := range candidate {
		cand[c.Name] = true
	}
	for _, b := range baseline {
		if re.MatchString(b.Name) && !cand[b.Name] {
			return fmt.Errorf("baseline benchmark %s missing from candidate — scale coverage must not shrink", b.Name)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched filter %q in both files", re)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "\n%d regression(s) beyond threshold:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(out, " ", r)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(regressions))
	}
	fmt.Fprintf(out, "\n%d scale benchmark(s) within thresholds (%s)\n", compared, thresholdNote(nsThreshold, bThreshold, gateNs))
	return nil
}

func thresholdNote(nsThreshold, bThreshold float64, gateNs bool) string {
	if !gateNs {
		return fmt.Sprintf("B/op %.2fx; ns/op ungated across hardware", bThreshold)
	}
	return fmt.Sprintf("ns/op %.2fx, B/op %.2fx", nsThreshold, bThreshold)
}
