// Command prcc-graph analyzes a share graph: timestamp graphs per
// Definition 5 (with witness loops), Section 5 compression, Section 4
// lower bounds, and the Hélary–Milani hoop comparison the paper corrects.
//
// Usage:
//
//	prcc-graph -topology ring -n 6
//	prcc-graph -topology fig5 -bounds -m 4
//	prcc-graph -topology hm1 -hoops
//	prcc-graph -topology random -n 32 -seed 7   # dense, untruncated (exact engine)
//	prcc-graph -topology random -n 32 -maxlen 5 # Appendix D truncation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lowerbound"
	"repro/internal/optimize"
	"repro/internal/sharegraph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-graph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prcc-graph", flag.ContinueOnError)
	topology := fs.String("topology", "fig5", "share graph family: "+strings.Join(cli.TopologyNames(), "|"))
	config := fs.String("config", "", "JSON placement file (overrides -topology)")
	n := fs.Int("n", 6, "size parameter for parametric families")
	seed := fs.Int64("seed", 1, "seed for the random family")
	bounds := fs.Bool("bounds", false, "compute Section 4 conflict-clique lower bounds")
	m := fs.Int("m", 2, "per-edge update budget for -bounds")
	maxlen := fs.Int("maxlen", 0, "truncate the loop search to this many vertices (Appendix D; 0 = exact)")
	hoops := fs.Bool("hoops", false, "compare Definition 5 tracking with Hélary–Milani minimal hoops")
	emit := fs.Bool("emit-config", false, "print the placement as a JSON config and exit")
	optimizeF := fs.Bool("optimize", false, "search for a placement tracking fewer timestamp entries (seeded by -seed; -bounds checks the result)")
	optEvals := fs.Int("opt-evals", 0, "candidate-evaluation budget for -optimize (0 = default 64, negative = unlimited)")
	optBroken := fs.Int("opt-broken", 0, "max registers -optimize may break (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *maxlen < 0 {
		fs.Usage()
		return fmt.Errorf("-maxlen %d: must be non-negative (0 = exact search)", *maxlen)
	}
	if *config == "" && *n <= 0 {
		fs.Usage()
		return fmt.Errorf("-n %d: parametric families need at least one replica", *n)
	}
	mSet := false
	optSet := false
	fs.Visit(func(fl *flag.Flag) {
		mSet = mSet || fl.Name == "m"
		optSet = optSet || fl.Name == "opt-evals" || fl.Name == "opt-broken"
	})
	if mSet && !*bounds {
		fs.Usage()
		return fmt.Errorf("-m only applies with -bounds")
	}
	if optSet && !*optimizeF {
		fs.Usage()
		return fmt.Errorf("-opt-evals/-opt-broken only apply with -optimize")
	}
	if *bounds && *m < 1 {
		fs.Usage()
		return fmt.Errorf("-m %d: the per-edge update budget must be at least 1", *m)
	}

	g, clientsCfg, err := cli.Load(*config, *topology, *n, *seed)
	if err != nil {
		return err
	}
	if *emit {
		data, err := sharegraph.ConfigFromGraph(g, clientsCfg).MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(g.String())
	fmt.Println()

	// The exact dominance-pruned engine keeps untruncated builds fast even
	// on dense topologies; -maxlen opts into the Appendix D truncation.
	graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{MaxLen: *maxlen})
	reports := optimize.AnalyzeAll(g, graphs)
	fmt.Println("replica | timestamp entries | compressed | tracked edges")
	for i, tg := range graphs {
		edges := make([]string, len(tg.Edges()))
		for p, e := range tg.Edges() {
			edges[p] = e.String()
		}
		fmt.Printf("%7d | %17d | %10d | %s\n", i, tg.Len(), reports[i].Compressed, strings.Join(edges, " "))
	}
	total := optimize.TotalEntries(reports)
	fmt.Printf("total: %d entries (%d compressed); matrix clock would use %d; naive vector %d (unsound)\n",
		total, optimize.TotalCompressed(reports),
		g.NumReplicas()*g.NumReplicas()*g.NumReplicas(), g.NumReplicas()*g.NumReplicas())

	for _, tg := range graphs {
		for _, e := range tg.NonIncidentEdges() {
			if lp, ok := tg.WitnessLoop(e); ok {
				fmt.Printf("replica %d tracks %v via %v\n", tg.Owner, e, lp)
			}
		}
	}

	if *bounds {
		fmt.Println()
		fmt.Printf("Section 4 lower bounds (m = %d):\n", *m)
		for i := 0; i < g.NumReplicas(); i++ {
			b := lowerbound.ComputeBound(g, sharegraph.ReplicaID(i), *m)
			fmt.Println(" ", b.String())
		}
	}

	if *optimizeF {
		res, err := optimize.Search(g, optimize.SearchOptions{
			Seed:       *seed,
			MaxEvals:   *optEvals,
			MaxBroken:  *optBroken,
			CheckBound: *bounds,
			BoundM:     *m,
		})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Printf("placement search (seed %d): %d -> %d tracked entries in %d evaluations\n",
			*seed, res.BaseEntries, res.Entries, res.Evals)
		broken := res.Placement.BrokenRegisters()
		if len(broken) == 0 {
			fmt.Println("  identity placement already optimal under the budget")
		}
		for _, x := range broken {
			fmt.Printf("  break %q, relay route %v\n", x, res.Placement.Broken[x])
		}
		if *bounds {
			fmt.Printf("  lower bounds on the optimized graph (m = %d, tight = %v):\n", *m, res.Tight())
			for _, b := range res.Bounds {
				fmt.Println("   ", b.String())
			}
		}
	}

	if *hoops {
		fmt.Println()
		fmt.Println("Hélary–Milani comparison (per register, per replica):")
		for _, x := range g.Registers() {
			holders := g.Holders(x)
			if len(holders) < 2 {
				continue
			}
			for i := 0; i < g.NumReplicas(); i++ {
				r := sharegraph.ReplicaID(i)
				if g.StoresRegister(r, x) {
					continue
				}
				_, inHoop := g.FindMinimalXHoopThrough(x, r, sharegraph.Original)
				_, inMod := g.FindMinimalXHoopThrough(x, r, sharegraph.Modified)
				tracks := false
				for _, e := range graphs[r].NonIncidentEdges() {
					if g.Shared(e.From, e.To).Has(x) {
						tracks = true
					}
				}
				if inHoop || inMod || tracks {
					fmt.Printf("  register %q, replica %d: minimal-hoop(Def18)=%v modified(Def20)=%v theorem8-tracks=%v\n",
						x, i, inHoop, inMod, tracks)
				}
			}
		}
	}
	return nil
}
