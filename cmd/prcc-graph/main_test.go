package main

import "testing"

func TestRunTopologies(t *testing.T) {
	cases := [][]string{
		{"-topology", "fig5"},
		{"-topology", "fig3", "-bounds", "-m", "2"},
		{"-topology", "hm1", "-hoops"},
		{"-topology", "ring", "-n", "5", "-bounds"},
		{"-topology", "ring", "-n", "6", "-maxlen", "4"},
		// Dense random placement, untruncated: exercises the exact loop
		// engine end to end through the CLI.
		{"-topology", "random", "-n", "16", "-seed", "3"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-topology", "nope"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunEmitConfig(t *testing.T) {
	if err := run([]string{"-topology", "fig3", "-emit-config"}); err != nil {
		t.Error(err)
	}
}
