package main

import "testing"

func TestRunTopologies(t *testing.T) {
	cases := [][]string{
		{"-topology", "fig5"},
		{"-topology", "fig3", "-bounds", "-m", "2"},
		{"-topology", "hm1", "-hoops"},
		{"-topology", "ring", "-n", "5", "-bounds"},
		{"-topology", "ring", "-n", "6", "-maxlen", "4"},
		// Placement search end to end through the CLI, with the bound
		// check on the optimized graph.
		{"-topology", "ring", "-n", "6", "-optimize", "-bounds"},
		{"-topology", "fig5", "-optimize", "-opt-evals", "8", "-opt-broken", "1"},
		// Dense random placement, untruncated: exercises the exact loop
		// engine end to end through the CLI.
		{"-topology", "random", "-n", "16", "-seed", "3"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown topology", []string{"-topology", "nope"}},
		{"bad flag", []string{"-badflag"}},
		{"negative maxlen", []string{"-topology", "fig5", "-maxlen", "-1"}},
		{"nonpositive n", []string{"-topology", "ring", "-n", "0"}},
		{"m without bounds", []string{"-topology", "fig5", "-m", "3"}},
		{"opt-evals without optimize", []string{"-topology", "fig5", "-opt-evals", "8"}},
		{"opt-broken without optimize", []string{"-topology", "fig5", "-opt-broken", "1"}},
		{"nonpositive m", []string{"-topology", "fig5", "-bounds", "-m", "0"}},
		{"positional junk", []string{"-topology", "fig5", "junk"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
		}
	}
}

func TestRunEmitConfig(t *testing.T) {
	if err := run([]string{"-topology", "fig3", "-emit-config"}); err != nil {
		t.Error(err)
	}
}
