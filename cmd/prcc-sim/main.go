// Command prcc-sim runs a simulated workload over a chosen topology and
// protocol, prints transport/metadata measurements, and reports the
// happened-before oracle's consistency verdict.
//
// Usage:
//
//	prcc-sim -topology ring -n 6 -protocol edge-indexed -ops 500
//	prcc-sim -topology fig3 -protocol naive-vector -adversarial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prcc-sim", flag.ContinueOnError)
	topology := fs.String("topology", "ring", "share graph family: "+strings.Join(cli.TopologyNames(), "|"))
	config := fs.String("config", "", "JSON placement file (overrides -topology)")
	n := fs.Int("n", 6, "size parameter for parametric families")
	protoName := fs.String("protocol", "edge-indexed", "protocol: edge-indexed|matrix|dummy-broadcast|naive-vector|fifo-only")
	ops := fs.Int("ops", 400, "number of client operations")
	readFrac := fs.Float64("reads", 0.2, "fraction of reads in the workload")
	seed := fs.Int64("seed", 1, "workload and schedule seed")
	adversarial := fs.Bool("adversarial", false, "use LIFO (maximally reordering) delivery")
	falseDeps := fs.Bool("false-deps", true, "track false dependencies")
	noAudit := fs.Bool("noaudit", false, "skip the causality oracle (pure-throughput runs; no verdict)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, _, err := cli.Load(*config, *topology, *n, *seed)
	if err != nil {
		return err
	}
	p, err := cli.Protocol(*protoName, g)
	if err != nil {
		return err
	}
	script, err := workload.Generate(g, workload.Options{Ops: *ops, ReadFraction: *readFrac, Seed: *seed})
	if err != nil {
		return err
	}
	var sched transport.Scheduler = transport.NewRandom(*seed)
	if *adversarial {
		sched = transport.LIFOScheduler{}
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Protocol: p, Script: script, Sched: sched,
		TrackFalseDeps: *falseDeps && !*noAudit, SkipAudit: *noAudit,
	})
	if err != nil {
		return err
	}

	fmt.Printf("topology=%s R=%d protocol=%s scheduler=%s\n", *topology, g.NumReplicas(), res.Protocol, res.Scheduler)
	fmt.Printf("writes=%d reads=%d applies=%d steps=%d\n", res.Writes, res.Reads, res.Applies, res.Steps)
	fmt.Printf("messages=%d (meta-only %d) metadata=%d bytes (%.1f per message)\n",
		res.MessagesSent, res.MetaOnlyMessages, res.MetaBytes, res.AvgMetaBytes())
	fmt.Printf("timestamp entries per replica: %v (total %d)\n",
		res.MetadataEntriesPerReplica, res.TotalMetadataEntries())
	fmt.Printf("false dependencies: %d updates, %d blocked step-slots; max pending %d\n",
		res.FalseDepUpdates, res.FalseDepDelay, res.MaxPending)

	if *noAudit {
		// Stuck pending is a protocol-level count, still meaningful
		// without the oracle; consistency verdicts are not.
		fmt.Printf("verdict: audit skipped (-noaudit); %d updates stuck\n", res.StuckPending)
		return nil
	}
	if res.Ok() {
		fmt.Println("verdict: causally consistent ✓")
		return nil
	}
	fmt.Printf("verdict: %d updates stuck, %d violations\n", res.StuckPending, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("  ", v)
	}
	// A failing run is the expected outcome for the broken baselines; the
	// tool still exits 0 because the simulation itself succeeded.
	return nil
}
