// Command prcc-sim runs a simulated workload over a chosen topology and
// protocol, prints transport/metadata measurements, and reports the
// happened-before oracle's consistency verdict.
//
// Usage:
//
//	prcc-sim -topology ring -n 6 -protocol edge-indexed -ops 500
//	prcc-sim -topology fig3 -protocol naive-vector -adversarial
//
// With -chaos the workload instead runs on the live worker-pool cluster
// under the fault-injection layer — seeded message loss and duplication,
// an optional partition with scheduled heal, an optional mid-run
// crash/restart with state transfer, and an optional heartbeat failure
// detector — and the oracle audits the healed, quiesced result:
//
//	prcc-sim -chaos -topology ring -n 8 -loss 0.02 -dup 0.01 -partition 0:4 -heal 2ms -crash 5 -heartbeat 500us
//
// Adding -reconfigure searches for an optimized placement up front and
// live-switches the cluster onto it at the 2/3 mark of the workload
// (partitions are healed first; the epoch fence requires it):
//
//	prcc-sim -chaos -topology ring -n 8 -loss 0.02 -reconfigure
//
// With -spaces the workload runs on the sharded multi-space runtime:
// many independent instances of the topology multiplexed over one
// shared worker pool, driven by a (optionally zipf-skewed) multi-tenant
// owner-writes workload, with batching efficiency reported alongside
// the aggregated per-space verdict:
//
//	prcc-sim -topology ring -n 8 -spaces 1000 -shards 32 -zipf 1.2 -ops 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/optimize"
	rt "repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prcc-sim", flag.ContinueOnError)
	topology := fs.String("topology", "ring", "share graph family: "+strings.Join(cli.TopologyNames(), "|"))
	config := fs.String("config", "", "JSON placement file (overrides -topology)")
	n := fs.Int("n", 6, "size parameter for parametric families")
	protoName := fs.String("protocol", "edge-indexed", "protocol: edge-indexed|matrix|dummy-broadcast|naive-vector|fifo-only")
	ops := fs.Int("ops", 400, "number of client operations")
	readFrac := fs.Float64("reads", 0.2, "fraction of reads in the workload")
	seed := fs.Int64("seed", 1, "workload and schedule seed")
	adversarial := fs.Bool("adversarial", false, "use LIFO (maximally reordering) delivery")
	falseDeps := fs.Bool("false-deps", true, "track false dependencies")
	noAudit := fs.Bool("noaudit", false, "skip the causality oracle (pure-throughput runs; no verdict)")
	chaos := fs.Bool("chaos", false, "run live under the fault-injection layer instead of the deterministic scheduler")
	loss := fs.Float64("loss", 0.01, "chaos: per-transmission drop probability")
	dup := fs.Float64("dup", 0.01, "chaos: duplicate-delivery probability")
	partition := fs.String("partition", "", "chaos: cut a replica pair mid-run, e.g. 0:4")
	healAfter := fs.Duration("heal", 0, "chaos: heal the partition after this delay (0 = heal at end of run)")
	crash := fs.Int("crash", -1, "chaos: crash this replica mid-run and restart it by state transfer (-1 = none)")
	heartbeat := fs.Duration("heartbeat", 0, "chaos: run the failure detector with this probe interval (0 = off)")
	reconf := fs.Bool("reconfigure", false, "chaos: search an optimized placement and live-switch the cluster onto it mid-run")
	statusAddr := fs.String("status", "", "serve /statusz and /metricsz on this address during a live run (requires -chaos or -spaces)")
	spaces := fs.Int("spaces", 0, "run the sharded multi-space runtime with this many independent spaces (0 = off)")
	shards := fs.Int("shards", 0, "sharded: engine inboxes the spaces multiplex onto (0 = min(spaces, 4×workers))")
	zipf := fs.Float64("zipf", 0, "sharded: zipf skew of the multi-tenant space distribution (0 = uniform, else > 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *ops < 0 {
		fs.Usage()
		return fmt.Errorf("-ops %d: must be non-negative", *ops)
	}
	if *statusAddr != "" && !*chaos && *spaces <= 0 {
		// The deterministic simulator has no live runtime to scrape; the
		// status endpoint only makes sense while a cluster is running.
		fs.Usage()
		return fmt.Errorf("-status requires a live runtime (-chaos or -spaces)")
	}
	if *config == "" && *n <= 0 {
		fs.Usage()
		return fmt.Errorf("-n %d: parametric families need at least one replica", *n)
	}
	if !*chaos {
		// The chaos knobs silently do nothing without -chaos; reject the
		// combination instead of running a run the user did not ask for.
		// -loss and -dup have nonzero defaults, so only explicitly-set
		// flags count.
		chaosOnly := map[string]bool{
			"loss": true, "dup": true, "partition": true,
			"heal": true, "crash": true, "heartbeat": true,
			"reconfigure": true,
		}
		var set []string
		fs.Visit(func(fl *flag.Flag) {
			if chaosOnly[fl.Name] {
				set = append(set, "-"+fl.Name)
			}
		})
		if len(set) > 0 {
			fs.Usage()
			return fmt.Errorf("%s: chaos knobs require -chaos", strings.Join(set, ", "))
		}
	}
	if *partition == "" {
		healSet := false
		fs.Visit(func(fl *flag.Flag) { healSet = healSet || fl.Name == "heal" })
		if healSet {
			fs.Usage()
			return fmt.Errorf("-heal only applies with -partition")
		}
	}
	if *spaces <= 0 {
		// Like the chaos knobs: sharded knobs do nothing without -spaces;
		// reject instead of silently running a different mode.
		shardedOnly := map[string]bool{"shards": true, "zipf": true}
		var set []string
		spacesSet := false
		fs.Visit(func(fl *flag.Flag) {
			if shardedOnly[fl.Name] {
				set = append(set, "-"+fl.Name)
			}
			spacesSet = spacesSet || fl.Name == "spaces"
		})
		if spacesSet {
			fs.Usage()
			return fmt.Errorf("-spaces %d: need at least one space", *spaces)
		}
		if len(set) > 0 {
			fs.Usage()
			return fmt.Errorf("%s: sharded knobs require -spaces", strings.Join(set, ", "))
		}
	} else {
		if *chaos || *adversarial {
			fs.Usage()
			return fmt.Errorf("-spaces selects the sharded runtime; it cannot be combined with -chaos or -adversarial")
		}
		readsSet := false
		fs.Visit(func(fl *flag.Flag) { readsSet = readsSet || fl.Name == "reads" })
		if readsSet {
			fs.Usage()
			return fmt.Errorf("-reads does not apply to the sharded owner-writes workload")
		}
	}

	g, _, err := cli.Load(*config, *topology, *n, *seed)
	if err != nil {
		return err
	}
	p, err := cli.Protocol(*protoName, g)
	if err != nil {
		return err
	}
	if *spaces > 0 {
		return runSharded(g, p, *topology, *spaces, *shards, *zipf, *ops, *seed, *noAudit, *statusAddr)
	}
	script, err := workload.Generate(g, workload.Options{Ops: *ops, ReadFraction: *readFrac, Seed: *seed})
	if err != nil {
		return err
	}

	if *chaos {
		cfg := sim.ChaosConfig{
			Graph: g, Protocol: p, Script: script,
			Plan: rt.FaultPlan{
				Seed:    *seed,
				Default: rt.EdgeFault{Drop: *loss, Dup: *dup},
			},
			Opts: []sim.ClusterOption{sim.WithSeed(*seed)},
		}
		if *partition != "" {
			as, bs, ok := strings.Cut(*partition, ":")
			if !ok {
				return fmt.Errorf("-partition wants a:b, got %q", *partition)
			}
			a, errA := strconv.Atoi(as)
			b, errB := strconv.Atoi(bs)
			if errA != nil || errB != nil || a < 0 || b < 0 || a >= g.NumReplicas() || b >= g.NumReplicas() {
				return fmt.Errorf("-partition %q: replicas must be in [0,%d)", *partition, g.NumReplicas())
			}
			cfg.Partition = true
			cfg.PartitionA = sharegraph.ReplicaID(a)
			cfg.PartitionB = sharegraph.ReplicaID(b)
			cfg.PartitionHeal = *healAfter
		}
		if *crash >= 0 {
			if *crash >= g.NumReplicas() {
				return fmt.Errorf("-crash %d: replicas must be in [0,%d)", *crash, g.NumReplicas())
			}
			cfg.Crash = true
			cfg.CrashReplica = sharegraph.ReplicaID(*crash)
		}
		if *heartbeat > 0 {
			cfg.Heartbeat = &membership.Options{Interval: *heartbeat}
		}
		if *reconf {
			// The search only depends on the share graph, so it can run
			// before the cluster even starts; the live switch happens at the
			// 2/3 mark of the workload, after any crash/restart.
			sr, err := optimize.Search(g, optimize.SearchOptions{Seed: *seed})
			if err != nil {
				return err
			}
			proto, err := sr.Placement.Protocol(p.Name() + "+optimized")
			if err != nil {
				return err
			}
			cfg.Reconfigure = proto
			fmt.Printf("reconfigure: placement search %d -> %d tracked entries, breaking %v\n",
				sr.BaseEntries, sr.Entries, sr.Placement.BrokenRegisters())
		}
		return runChaos(g, *topology, cfg, *statusAddr)
	}
	var sched transport.Scheduler = transport.NewRandom(*seed)
	if *adversarial {
		sched = transport.LIFOScheduler{}
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Protocol: p, Script: script, Sched: sched,
		TrackFalseDeps: *falseDeps && !*noAudit, SkipAudit: *noAudit,
	})
	if err != nil {
		return err
	}

	fmt.Printf("topology=%s R=%d protocol=%s scheduler=%s\n", *topology, g.NumReplicas(), res.Protocol, res.Scheduler)
	fmt.Printf("writes=%d reads=%d applies=%d steps=%d\n", res.Writes, res.Reads, res.Applies, res.Steps)
	fmt.Printf("messages=%d (meta-only %d) metadata=%d bytes (%.1f per message)\n",
		res.MessagesSent, res.MetaOnlyMessages, res.MetaBytes, res.AvgMetaBytes())
	fmt.Printf("timestamp entries per replica: %v (total %d)\n",
		res.MetadataEntriesPerReplica, res.TotalMetadataEntries())
	fmt.Printf("false dependencies: %d updates, %d blocked step-slots; max pending %d\n",
		res.FalseDepUpdates, res.FalseDepDelay, res.MaxPending)

	if *noAudit {
		// Stuck pending is a protocol-level count, still meaningful
		// without the oracle; consistency verdicts are not.
		fmt.Printf("verdict: audit skipped (-noaudit); %d updates stuck\n", res.StuckPending)
		return nil
	}
	if res.Ok() {
		fmt.Println("verdict: causally consistent ✓")
		return nil
	}
	fmt.Printf("verdict: %d updates stuck, %d violations\n", res.StuckPending, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("  ", v)
	}
	// A failing run is the expected outcome for the broken baselines; the
	// tool still exits 0 because the simulation itself succeeded.
	return nil
}

// runSharded multiplexes many independent spaces of the topology over
// one shared worker pool and reports routing geometry, batching
// efficiency, and the aggregated per-space oracle verdict.
func runSharded(g *sharegraph.Graph, p core.Protocol, topology string, spaces, shards int, zipf float64, ops int, seed int64, noAudit bool, statusAddr string) error {
	ms, err := workload.GenerateMulti(g, workload.MultiOptions{
		Spaces: spaces, Ops: ops, Zipf: zipf, Seed: seed,
	})
	if err != nil {
		return err
	}
	r, err := shard.New(g, p, shard.Options{
		Spaces: spaces, Shards: shards, Seed: seed, Audit: !noAudit,
		Metrics: statusAddr != "",
	})
	if err != nil {
		return err
	}
	defer r.Close()
	if statusAddr != "" {
		srv, err := obs.Serve(statusAddr, r.Metrics)
		if err != nil {
			return fmt.Errorf("-status %s: %w", statusAddr, err)
		}
		defer srv.Close()
		fmt.Printf("status: serving /statusz and /metricsz on %s\n", srv.Addr())
	}
	violations := r.RunMulti(ms, 0)

	dist := "uniform"
	if zipf > 0 {
		dist = fmt.Sprintf("zipf(%g)", zipf)
	}
	fmt.Printf("topology=%s R=%d protocol=%s runtime=sharded\n", topology, g.NumReplicas(), p.Name())
	fmt.Printf("spaces=%d shards=%d workers=%d distribution=%s\n", r.Spaces(), r.Shards(), r.Workers(), dist)
	st := r.Stats()
	fmt.Printf("ops=%d envelopes=%d batches=%d (%.1f per batch) metadata=%d bytes\n",
		len(ms.Ops), st.Messages, st.Batches, st.AvgBatch(), st.MetaBytes)

	if noAudit {
		fmt.Println("verdict: audit skipped (-noaudit)")
		return nil
	}
	if len(violations) == 0 {
		fmt.Printf("verdict: causally consistent across all %d spaces ✓\n", spaces)
		return nil
	}
	fmt.Printf("verdict: %d violations\n", len(violations))
	for _, v := range violations {
		fmt.Println("  ", v)
	}
	return nil
}

// runChaos executes the three-phase chaos orchestration and reports the
// fault layer's counters, the detector's transitions, and the oracle's
// post-heal verdict.
func runChaos(g *sharegraph.Graph, topology string, cfg sim.ChaosConfig, statusAddr string) error {
	var srv *obs.StatusServer
	if statusAddr != "" {
		cfg.Opts = append(cfg.Opts, sim.WithMetrics())
		var serveErr error
		cfg.OnCluster = func(c *sim.Cluster) {
			srv, serveErr = obs.Serve(statusAddr, c.Metrics)
			if serveErr == nil {
				fmt.Printf("status: serving /statusz and /metricsz on %s\n", srv.Addr())
			}
		}
		// The cluster dies with RunChaos; the endpoint must not outlive it.
		defer func() {
			if srv != nil {
				srv.Close()
			}
		}()
		defer func() {
			if serveErr != nil {
				fmt.Fprintf(os.Stderr, "prcc-sim: -status %s: %v\n", statusAddr, serveErr)
			}
		}()
	}
	res, err := sim.RunChaos(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("topology=%s R=%d protocol=%s runtime=chaos\n", topology, g.NumReplicas(), cfg.Protocol.Name())
	var faults []string
	faults = append(faults, fmt.Sprintf("loss=%g dup=%g seed=%d", cfg.Plan.Default.Drop, cfg.Plan.Default.Dup, cfg.Plan.Seed))
	if cfg.Partition {
		heal := "at end of run"
		if cfg.PartitionHeal > 0 {
			heal = fmt.Sprintf("after %v", cfg.PartitionHeal)
		}
		faults = append(faults, fmt.Sprintf("partition %d<->%d healed %s", cfg.PartitionA, cfg.PartitionB, heal))
	}
	if cfg.Crash {
		faults = append(faults, fmt.Sprintf("crash+restart replica %d", cfg.CrashReplica))
	}
	if cfg.Reconfigure != nil {
		faults = append(faults, "mid-run reconfigure onto "+cfg.Reconfigure.Name())
	}
	fmt.Println("faults:", strings.Join(faults, ", "))
	fmt.Printf("messages=%d dropped=%d duplicated=%d\n", res.MessagesSent, res.Dropped, res.Duped)
	if res.PendingTotal > 0 {
		// Injected duplicates park dead in the ingest queues and stay
		// counted; the oracle's liveness audit below is the judge.
		fmt.Printf("buffered at quiescence: %d (dead-parked duplicates are expected here)\n", res.PendingTotal)
	}
	for _, e := range res.Events {
		fmt.Println("  detector:", e)
	}

	if len(res.Violations) == 0 {
		fmt.Println("verdict: causally consistent after heal and restart ✓")
		return nil
	}
	fmt.Printf("verdict: %d violations\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("  ", v)
	}
	return nil
}
