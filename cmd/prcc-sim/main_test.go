package main

import "testing"

func TestRunProtocols(t *testing.T) {
	for _, proto := range []string{"edge-indexed", "matrix", "dummy-broadcast", "naive-vector", "fifo-only"} {
		args := []string{"-topology", "ring", "-n", "4", "-protocol", proto, "-ops", "60"}
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-topology", "fig5", "-adversarial", "-ops", "50"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-topology", "ring", "-n", "6", "-ops", "80", "-noaudit"}); err != nil {
		t.Error(err)
	}
}

func TestRunChaosReconfigure(t *testing.T) {
	args := []string{"-chaos", "-topology", "ring", "-n", "6", "-ops", "150",
		"-loss", "0.02", "-dup", "0.02", "-reconfigure"}
	if err := run(args); err != nil {
		t.Errorf("run(%v): %v", args, err)
	}
}

func TestRunSharded(t *testing.T) {
	cases := [][]string{
		{"-topology", "ring", "-n", "4", "-spaces", "8", "-ops", "200"},
		{"-topology", "fig3", "-spaces", "5", "-shards", "2", "-zipf", "1.3", "-ops", "150"},
		{"-topology", "ring", "-n", "4", "-spaces", "3", "-ops", "100", "-noaudit"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown protocol", []string{"-protocol", "nope"}},
		{"unknown topology", []string{"-topology", "nope"}},
		{"bad read fraction", []string{"-reads", "3.0"}},
		{"negative ops", []string{"-ops", "-1"}},
		{"nonpositive n", []string{"-n", "0"}},
		{"positional junk", []string{"-ops", "10", "junk"}},
		{"partition without chaos", []string{"-partition", "0:2"}},
		{"loss without chaos", []string{"-loss", "0.5"}},
		{"dup without chaos", []string{"-dup", "0.5"}},
		{"crash without chaos", []string{"-crash", "1"}},
		{"heartbeat without chaos", []string{"-heartbeat", "1ms"}},
		{"heal without chaos", []string{"-heal", "1ms"}},
		{"reconfigure without chaos", []string{"-reconfigure"}},
		{"heal without partition", []string{"-chaos", "-heal", "1ms"}},
		{"malformed partition", []string{"-chaos", "-partition", "0-2", "-ops", "20"}},
		{"partition replica out of range", []string{"-chaos", "-partition", "0:99", "-ops", "20"}},
		{"crash replica out of range", []string{"-chaos", "-crash", "99", "-ops", "20"}},
		{"shards without spaces", []string{"-shards", "4"}},
		{"zipf without spaces", []string{"-zipf", "1.2"}},
		{"spaces with chaos", []string{"-spaces", "2", "-chaos", "-ops", "20"}},
		{"spaces with adversarial", []string{"-spaces", "2", "-adversarial", "-ops", "20"}},
		{"reads with spaces", []string{"-spaces", "2", "-reads", "0.5", "-ops", "20"}},
		{"negative spaces", []string{"-spaces", "-3"}},
		{"bad zipf", []string{"-spaces", "2", "-zipf", "0.5", "-ops", "20"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
		}
	}
}
