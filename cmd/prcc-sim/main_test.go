package main

import "testing"

func TestRunProtocols(t *testing.T) {
	for _, proto := range []string{"edge-indexed", "matrix", "dummy-broadcast", "naive-vector", "fifo-only"} {
		args := []string{"-topology", "ring", "-n", "4", "-protocol", proto, "-ops", "60"}
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-topology", "fig5", "-adversarial", "-ops", "50"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-topology", "ring", "-n", "6", "-ops", "80", "-noaudit"}); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-protocol", "nope"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-topology", "nope"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-reads", "3.0"}); err == nil {
		t.Error("bad read fraction accepted")
	}
}
