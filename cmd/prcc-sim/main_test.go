package main

import "testing"

func TestRunProtocols(t *testing.T) {
	for _, proto := range []string{"edge-indexed", "matrix", "dummy-broadcast", "naive-vector", "fifo-only"} {
		args := []string{"-topology", "ring", "-n", "4", "-protocol", proto, "-ops", "60"}
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-topology", "fig5", "-adversarial", "-ops", "50"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-topology", "ring", "-n", "6", "-ops", "80", "-noaudit"}); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown protocol", []string{"-protocol", "nope"}},
		{"unknown topology", []string{"-topology", "nope"}},
		{"bad read fraction", []string{"-reads", "3.0"}},
		{"negative ops", []string{"-ops", "-1"}},
		{"nonpositive n", []string{"-n", "0"}},
		{"positional junk", []string{"-ops", "10", "junk"}},
		{"partition without chaos", []string{"-partition", "0:2"}},
		{"loss without chaos", []string{"-loss", "0.5"}},
		{"dup without chaos", []string{"-dup", "0.5"}},
		{"crash without chaos", []string{"-crash", "1"}},
		{"heartbeat without chaos", []string{"-heartbeat", "1ms"}},
		{"heal without chaos", []string{"-heal", "1ms"}},
		{"heal without partition", []string{"-chaos", "-heal", "1ms"}},
		{"malformed partition", []string{"-chaos", "-partition", "0-2", "-ops", "20"}},
		{"partition replica out of range", []string{"-chaos", "-partition", "0:99", "-ops", "20"}},
		{"crash replica out of range", []string{"-chaos", "-crash", "99", "-ops", "20"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
		}
	}
}
