package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsBadFlags is the satellite validation table for the node
// binary: missing or contradictory flags exit non-zero with a message
// naming the offender.
func TestRunRejectsBadFlags(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "cluster.json")
	cfg := `{"protocol":"edge-indexed","replicas":[
		{"addr":"127.0.0.1:42190","registers":["a","b"]},
		{"addr":"127.0.0.1:42191","registers":["b","c"]}]}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no config", []string{"-id", "0"}, "-config is required"},
		{"no id", []string{"-config", cfgPath}, "-id is required"},
		{"id out of range", []string{"-config", cfgPath, "-id", "7"}, "outside"},
		{"missing config file", []string{"-config", "/nonexistent.json", "-id", "0"}, "cluster config"},
		{"positional junk", []string{"-config", cfgPath, "-id", "0", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "bad.json")
	// Two replicas sharing an address: structurally invalid.
	cfg := `{"protocol":"edge-indexed","replicas":[
		{"addr":"127.0.0.1:42195","registers":["a"]},
		{"addr":"127.0.0.1:42195","registers":["a"]}]}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfgPath, "-id", "0"}); err == nil {
		t.Fatal("duplicate-address config accepted")
	}
}
