package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestMultiProcessDifferentialRing is the deployment acceptance test:
// a Ring cluster running as real OS processes over loopback TCP must
// finish the same OwnerWrites script with final states byte-equal to the
// in-process sim.Cluster run (single-writer registers pin the final
// state, so any divergence is a codec, transport or deployment bug).
func TestMultiProcessDifferentialRing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a multi-process cluster")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "prcc-node")
	clientBin := filepath.Join(dir, "prcc-client")
	for bin, pkg := range map[string]string{nodeBin: "repro/cmd/prcc-node", clientBin: "repro/cmd/prcc-client"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // repo root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Deployment config on reserved loopback ports.
	const replicas, ops, seed = 8, 400, 11
	cfg := wire.ClusterConfig{Protocol: "edge-indexed", Replicas: make([]wire.NodeAddr, replicas)}
	ring := sharegraph.Ring(replicas)
	lns := make([]net.Listener, replicas)
	for i := range cfg.Replicas {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		cfg.Replicas[i] = wire.NodeAddr{
			Addr:      ln.Addr().String(),
			Registers: ring.Stores(sharegraph.ReplicaID(i)).Sorted(),
		}
	}
	for _, ln := range lns {
		ln.Close()
	}
	data, err := cfg.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// In-process reference run over the identical graph derivation (the
	// deployed processes all rebuild the graph from the config, so the
	// reference must too).
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cli.Protocol(cfg.Protocol, g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.NewCluster(g, proto)
	if err != nil {
		t.Fatal(err)
	}
	if v := ref.RunScript(workload.OwnerWrites(g, ops, seed)); len(v) > 0 {
		t.Fatalf("reference run: %d oracle violations", len(v))
	}
	want := wire.FormatSnapshots(ref.StateSnapshot())
	ref.Close()

	// The deployed cluster: one OS process per replica.
	nodes := make([]*exec.Cmd, replicas)
	logs := make([]*bytes.Buffer, replicas)
	for i := range nodes {
		logs[i] = new(bytes.Buffer)
		nodes[i] = exec.Command(nodeBin, "-config", cfgPath, "-id", fmt.Sprint(i))
		nodes[i].Stdout = logs[i]
		nodes[i].Stderr = logs[i]
		if err := nodes[i].Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
	}
	defer func() {
		for i, n := range nodes {
			if n.ProcessState == nil {
				n.Process.Kill()
				n.Wait()
			}
			if t.Failed() {
				t.Logf("replica %d output:\n%s", i, logs[i])
			}
		}
	}()

	// One client process runs the script, quiesces, prints the canonical
	// snapshot and shuts the cluster down.
	client := exec.Command(clientBin,
		"-config", cfgPath, "-ops", fmt.Sprint(ops), "-seed", fmt.Sprint(seed),
		"-snapshot", "-shutdown")
	var stdout, stderr bytes.Buffer
	client.Stdout = &stdout
	client.Stderr = &stderr
	if err := client.Run(); err != nil {
		t.Fatalf("client: %v\n%s", err, &stderr)
	}
	if got := stdout.String(); got != want {
		t.Errorf("final states diverge:\nprocesses:\n%s\nin-process:\n%s", got, want)
	}

	// Every node must exit cleanly on the shutdown frame.
	for i, n := range nodes {
		exited := make(chan error, 1)
		go func() { exited <- n.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				t.Errorf("replica %d exit: %v\n%s", i, err, logs[i])
			}
		case <-time.After(10 * time.Second):
			t.Errorf("replica %d did not exit on shutdown", i)
			n.Process.Kill()
		}
	}
}

// TestMultiProcessKillNineRestart is the crash-recovery acceptance test
// at the process boundary: run half the script, quiesce, kill -9 one
// node mid-deployment, restart it against its durable mutation log, run
// the second half, and require the final states byte-equal to one
// uninterrupted in-process run of the whole script. The log replay must
// restore not just register state but the sent/recv counters — the
// phase-2 quiesce sums them cluster-wide and would time out (failing the
// client) if replay under- or over-counted.
func TestMultiProcessKillNineRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a multi-process cluster")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "prcc-node")
	clientBin := filepath.Join(dir, "prcc-client")
	for bin, pkg := range map[string]string{nodeBin: "repro/cmd/prcc-node", clientBin: "repro/cmd/prcc-client"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // repo root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	const replicas, ops, seed, cut, victim = 6, 400, 13, 200, 2
	cfg := wire.ClusterConfig{Protocol: "edge-indexed", Replicas: make([]wire.NodeAddr, replicas)}
	ring := sharegraph.Ring(replicas)
	lns := make([]net.Listener, replicas)
	for i := range cfg.Replicas {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		cfg.Replicas[i] = wire.NodeAddr{
			Addr:      ln.Addr().String(),
			Registers: ring.Stores(sharegraph.ReplicaID(i)).Sorted(),
		}
	}
	for _, ln := range lns {
		ln.Close()
	}
	data, err := cfg.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted in-process reference over the full script, audited.
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cli.Protocol(cfg.Protocol, g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.NewCluster(g, proto)
	if err != nil {
		t.Fatal(err)
	}
	if v := ref.RunScript(workload.OwnerWrites(g, ops, seed)); len(v) > 0 {
		t.Fatalf("reference run: %d oracle violations", len(v))
	}
	want := wire.FormatSnapshots(ref.StateSnapshot())
	ref.Close()

	// Every node keeps a durable log so the victim can be resurrected.
	startNode := func(i int) (*exec.Cmd, *bytes.Buffer) {
		log := new(bytes.Buffer)
		cmd := exec.Command(nodeBin, "-config", cfgPath, "-id", fmt.Sprint(i),
			"-log", filepath.Join(dir, fmt.Sprintf("node%d.log", i)))
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		return cmd, log
	}
	nodes := make([]*exec.Cmd, replicas)
	logs := make([]*bytes.Buffer, replicas)
	for i := range nodes {
		nodes[i], logs[i] = startNode(i)
	}
	defer func() {
		for i, n := range nodes {
			if n.ProcessState == nil {
				n.Process.Kill()
				n.Wait()
			}
			if t.Failed() {
				t.Logf("replica %d output:\n%s", i, logs[i])
			}
		}
	}()

	runClient := func(extra ...string) {
		t.Helper()
		args := append([]string{
			"-config", cfgPath, "-ops", fmt.Sprint(ops), "-seed", fmt.Sprint(seed),
		}, extra...)
		client := exec.Command(clientBin, args...)
		var stdout, stderr bytes.Buffer
		client.Stdout = &stdout
		client.Stderr = &stderr
		if err := client.Run(); err != nil {
			t.Fatalf("client %v: %v\n%s", extra, err, &stderr)
		}
		if stdout.Len() > 0 {
			if got := stdout.String(); got != want {
				t.Errorf("final states diverge after kill -9 + restart:\nprocesses:\n%s\nin-process:\n%s", got, want)
			}
		}
	}

	// Phase 1: first half of the script, then quiesce (the client's
	// default) so nothing is in flight when the victim dies — SIGKILL
	// discards its transport queues and sockets, not its log.
	runClient("-to", fmt.Sprint(cut))

	if err := nodes[victim].Process.Kill(); err != nil {
		t.Fatalf("kill -9 replica %d: %v", victim, err)
	}
	nodes[victim].Wait() // reap; exit error is the point here

	// Resurrect the victim on the same address with the same log.
	nodes[victim], logs[victim] = startNode(victim)

	// Phase 2: the rest of the same script, then snapshot + shutdown.
	// runClient checks the snapshot against the uninterrupted reference.
	runClient("-from", fmt.Sprint(cut), "-snapshot", "-shutdown")

	for i, n := range nodes {
		exited := make(chan error, 1)
		go func() { exited <- n.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				t.Errorf("replica %d exit: %v\n%s", i, err, logs[i])
			}
		case <-time.After(10 * time.Second):
			t.Errorf("replica %d did not exit on shutdown", i)
			n.Process.Kill()
		}
	}
}
