// Command prcc-node hosts one replica of a deployed cluster: the
// protocol state machine behind a TCP listener, exchanging
// length-prefixed wire frames with its peers (see internal/wire). Every
// node of a cluster is started from the same config file; replica IDs
// are positions in its replicas array.
//
// Usage:
//
//	prcc-node -config cluster.json -id 0
//
// The process serves until a client sends a Shutdown frame (see
// prcc-client -shutdown) or it receives SIGINT/SIGTERM, then drains its
// outgoing queues and exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prcc-node", flag.ContinueOnError)
	config := fs.String("config", "", "cluster config JSON file (required)")
	id := fs.Int("id", -1, "replica ID: index into the config's replicas array (required)")
	logPath := fs.String("log", "", "durable mutation log path: replayed on start, appended while serving (crash recovery)")
	statusAddr := fs.String("status", "", "serve /statusz and /metricsz on this address (arms per-edge metrics)")
	quiet := fs.Bool("quiet", false, "suppress per-connection diagnostics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *config == "" {
		fs.Usage()
		return errors.New("-config is required")
	}
	if *id < 0 {
		fs.Usage()
		return errors.New("-id is required (a non-negative replica index)")
	}

	cfg, err := wire.LoadClusterConfig(*config)
	if err != nil {
		return err
	}
	g, err := cfg.Graph()
	if err != nil {
		return err
	}
	p, err := cli.Protocol(cfg.Protocol, g)
	if err != nil {
		return err
	}
	opts := wire.NodeOptions{Logf: log.Printf, LogPath: *logPath, StatusAddr: *statusAddr}
	if *quiet {
		opts.Logf = func(string, ...any) {}
	}
	node, err := wire.NewNode(cfg, *id, p, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prcc-node: replica %d (%s) listening on %s\n", *id, p.Name(), node.Addr())
	if sa := node.StatusAddrServing(); sa != "" {
		fmt.Fprintf(os.Stderr, "prcc-node: replica %d status on http://%s/statusz\n", *id, sa)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- node.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-node.ShutdownRequested():
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "prcc-node: replica %d: %v\n", *id, s)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}
	node.Close()
	return nil
}
