// Command prcc-client drives a deployed cluster of prcc-node processes:
// it generates the deployment config, runs scripted workloads, polls the
// cluster to quiescence, prints canonical per-replica snapshots, and
// performs orderly shutdown.
//
// Generate a config (the share graph placement every process derives the
// same timestamp spaces from):
//
//	prcc-client -emit-config -topology ring -n 3 -baseport 42100 > cluster.json
//
// Run a workload and print the final states:
//
//	prcc-client -config cluster.json -ops 400 -seed 11 -snapshot
//
// Shut the cluster down (quiesces first):
//
//	prcc-client -config cluster.json -shutdown
//
// Poll every replica's counters into the unified metrics snapshot
// (the same schema a node's -status endpoint serves on /statusz):
//
//	prcc-client status -config cluster.json
//
// The snapshot output is the canonical byte-comparable form
// (wire.FormatSnapshots); two runs of the same single-writer script on
// any runtime must print identical bytes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prcc-client:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// Subcommands come before flags; everything else is the legacy
	// flag-driven surface.
	if len(args) > 0 && args[0] == "status" {
		return runStatus(args[1:], out)
	}
	fs := flag.NewFlagSet("prcc-client", flag.ContinueOnError)
	config := fs.String("config", "", "cluster config JSON file")
	ops := fs.Int("ops", 0, "owner-writes operations to run (0 = none)")
	seed := fs.Int64("seed", 1, "workload seed")
	from := fs.Int("from", 0, "run only script operations [from,to): first index")
	to := fs.Int("to", -1, "run only script operations [from,to): limit index (-1 = end)")
	quiesce := fs.Duration("quiesce", 30*time.Second, "quiesce timeout after the workload")
	dialTimeout := fs.Duration("dial-timeout", 10*time.Second, "per-cluster dial timeout")
	snapshot := fs.Bool("snapshot", false, "print canonical per-replica snapshots after quiescing")
	shutdown := fs.Bool("shutdown", false, "ask every replica to exit after quiescing")
	emit := fs.Bool("emit-config", false, "emit a cluster config for -topology/-n instead of connecting")
	topology := fs.String("topology", "ring", "emit-config: share graph family")
	n := fs.Int("n", 3, "emit-config: size parameter")
	protocol := fs.String("protocol", "edge-indexed", "emit-config: protocol name")
	host := fs.String("host", "127.0.0.1", "emit-config: host for replica addresses")
	basePort := fs.Int("baseport", 42100, "emit-config: first replica port")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *ops < 0 {
		fs.Usage()
		return fmt.Errorf("-ops %d: must be non-negative", *ops)
	}

	if *emit {
		if *config != "" {
			fs.Usage()
			return errors.New("-emit-config generates a config; it cannot be combined with -config")
		}
		if *basePort <= 0 || *basePort > 65535 {
			fs.Usage()
			return fmt.Errorf("-baseport %d: must be a valid port", *basePort)
		}
		g, err := cli.Topology(*topology, *n, *seed)
		if err != nil {
			return err
		}
		cfg := wire.ConfigFromGraph(g, *protocol, *host, *basePort)
		if err := cfg.Validate(); err != nil {
			return err
		}
		data, err := cfg.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", data)
		return nil
	}

	if *config == "" {
		fs.Usage()
		return errors.New("-config is required (or -emit-config to generate one)")
	}
	cfg, err := wire.LoadClusterConfig(*config)
	if err != nil {
		return err
	}
	client, err := wire.Dial(cfg, *dialTimeout)
	if err != nil {
		return err
	}
	defer client.Close()

	if *ops > 0 {
		g, err := client.Graph()
		if err != nil {
			return err
		}
		// The script is always generated whole from (ops, seed) and then
		// sliced: [from,to) of the same deterministic sequence, so a run
		// split across client invocations (e.g. around a node crash) is
		// op-for-op identical to one uninterrupted run.
		script := workload.OwnerWrites(g, *ops, *seed)
		lo, hi := *from, *to
		if hi < 0 || hi > len(script) {
			hi = len(script)
		}
		if lo < 0 || lo > hi {
			return fmt.Errorf("-from %d -to %d: need 0 <= from <= to <= %d", *from, *to, len(script))
		}
		if err := client.RunScript(script[lo:hi]); err != nil {
			return err
		}
	}
	if err := client.Quiesce(*quiesce); err != nil {
		return err
	}
	if *snapshot {
		snaps, err := client.Snapshots()
		if err != nil {
			return err
		}
		fmt.Fprint(out, wire.FormatSnapshots(snaps))
	}
	if *shutdown {
		return client.Shutdown()
	}
	return nil
}

// runStatus implements "prcc-client status": poll every replica's
// counters and print the unified metrics snapshot as indented JSON —
// the same schema a node's /statusz endpoint serves.
func runStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prcc-client status", flag.ContinueOnError)
	config := fs.String("config", "", "cluster config JSON file (required)")
	dialTimeout := fs.Duration("dial-timeout", 10*time.Second, "per-cluster dial timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *config == "" {
		fs.Usage()
		return errors.New("-config is required")
	}
	cfg, err := wire.LoadClusterConfig(*config)
	if err != nil {
		return err
	}
	client, err := wire.Dial(cfg, *dialTimeout)
	if err != nil {
		return err
	}
	defer client.Close()
	m, err := client.Metrics()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", data)
	return nil
}
