package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestEmitConfig(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-emit-config", "-topology", "ring", "-n", "3", "-baseport", "42100"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	cfg, err := wire.ParseClusterConfig(out.Bytes())
	if err != nil {
		t.Fatalf("emitted config does not parse: %v", err)
	}
	if len(cfg.Replicas) != 3 || cfg.Protocol != "edge-indexed" {
		t.Fatalf("emitted config = %+v", cfg)
	}
	if cfg.Replicas[1].Addr != "127.0.0.1:42101" {
		t.Fatalf("replica 1 addr = %s", cfg.Replicas[1].Addr)
	}
}

// TestRunRejectsBadFlags is the satellite validation table: nonsensical
// flag combinations exit non-zero with a message naming the offender.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"no config", nil, "-config is required"},
		{"negative ops", []string{"-config", "x.json", "-ops", "-5"}, "-ops"},
		{"emit with config", []string{"-emit-config", "-config", "x.json"}, "cannot be combined"},
		{"emit bad baseport", []string{"-emit-config", "-baseport", "0"}, "-baseport"},
		{"emit baseport overflow", []string{"-emit-config", "-baseport", "70000"}, "-baseport"},
		{"emit bad topology", []string{"-emit-config", "-topology", "nope"}, "nope"},
		{"positional junk", []string{"-emit-config", "extra"}, "unexpected arguments"},
		{"missing config file", []string{"-config", "/nonexistent/cluster.json"}, "cluster config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}
