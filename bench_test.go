package prcc

// Root benchmark harness: one benchmark per experiment row in DESIGN.md's
// index (the paper has no measured tables, so these regenerate the
// repository's EXPERIMENTS.md quantities). Custom metrics attach the
// quantities the paper reasons about — timestamp entries and metadata
// bytes per message — to the timing output.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/causality"
	"repro/internal/clientserver"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/optimize"
	"repro/internal/shard"
	"repro/internal/sharegraph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BenchmarkE1ShareGraphBuild measures share-graph construction
// (Definition 3) on a random 12-replica, 36-register placement.
func BenchmarkE1ShareGraphBuild(b *testing.B) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		sharegraph.RandomK(12, 36, 3, 7)
	}
}

// namedGraph orders sub-benchmark cases explicitly: iterating a
// map[string]*Graph made sub-benchmark output order vary run to run,
// which broke benchstat-style diffing of saved outputs.
type namedGraph struct {
	name string
	g    *sharegraph.Graph
}

// BenchmarkE2TimestampGraph measures Definition 5 timestamp-graph
// construction ((i,e_jk)-loop search via the exact dominance-pruned
// engine) on the Figure 5 example, on rings, and — untruncated — on the
// dense random topology the legacy enumerating DFS could not finish.
func BenchmarkE2TimestampGraph(b *testing.B) {
	cases := []namedGraph{
		{"fig5", sharegraph.Fig5Example()},
		{"ring8", sharegraph.Ring(8)},
		{"ring12", sharegraph.Ring(12)},
		{"randomk32_exact", sharegraph.RandomK(32, 96, 3, 7)},
	}
	for _, tc := range cases {
		g := tc.g
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			entries := 0
			for n := 0; n < b.N; n++ {
				entries = sharegraph.BuildTSGraph(g, 0, sharegraph.LoopOptions{}).Len()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkE6ConsistencyRun measures a full oracle-audited run of the
// paper's algorithm (Theorem 24 path) on representative topologies.
func BenchmarkE6ConsistencyRun(b *testing.B) {
	cases := []namedGraph{
		{"fig5", sharegraph.Fig5Example()},
		{"ring6", sharegraph.Ring(6)},
		{"grid9", sharegraph.Grid(3, 3)},
	}
	for _, tc := range cases {
		g := tc.g
		p, err := core.NewEdgeIndexed(g)
		if err != nil {
			b.Fatal(err)
		}
		script := workload.SharedOnly(g, 300, 1)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: transport.NewRandom(int64(n))})
				if err != nil || !res.Ok() {
					b.Fatalf("run failed: %v %v", err, res.Violations)
				}
			}
		})
	}
}

// BenchmarkE8LowerBoundTree regenerates the tree closed-form check:
// conflict-clique construction + pairwise Definition 13 verification.
func BenchmarkE8LowerBoundTree(b *testing.B) {
	g := sharegraph.Line(5)
	b.ReportAllocs()
	tight := true
	for n := 0; n < b.N; n++ {
		bound := lowerbound.ComputeBound(g, 1, 2)
		tight = tight && bound.Tight()
	}
	if !tight {
		b.Fatal("tree bound not tight")
	}
}

// BenchmarkE9LowerBoundCycle regenerates the cycle closed-form check.
func BenchmarkE9LowerBoundCycle(b *testing.B) {
	g := sharegraph.Ring(4)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if bound := lowerbound.ComputeBound(g, 0, 2); !bound.Tight() {
			b.Fatal("cycle bound not tight")
		}
	}
}

// BenchmarkE11Compression measures Section 5 compression analysis and
// reports the achieved ratio on random k-replication.
func BenchmarkE11Compression(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		g := sharegraph.RandomK(8, 24, k, 5)
		graphs := sharegraph.BuildAllTSGraphs(g, sharegraph.LoopOptions{})
		b.Run(map[int]string{2: "k2", 3: "k3", 4: "k4"}[k], func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			for n := 0; n < b.N; n++ {
				reports := optimize.AnalyzeAll(g, graphs)
				ratio = float64(optimize.TotalCompressed(reports)) / float64(optimize.TotalEntries(reports))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkE12DummyEmulation runs the full-replication emulation and
// reports its message amplification relative to the plain protocol.
func BenchmarkE12DummyEmulation(b *testing.B) {
	g := sharegraph.Ring(6)
	script := workload.SharedOnly(g, 300, 3)
	plain, err := core.NewEdgeIndexed(g)
	if err != nil {
		b.Fatal(err)
	}
	full, err := optimize.FullEmulationPlan(g).Protocol("full-emulation")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		p    core.Protocol
	}{{"plain", plain}, {"full-emulation", full}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			msgs := 0
			for n := 0; n < b.N; n++ {
				res, err := sim.Run(sim.Config{Graph: g, Protocol: bc.p, Script: script, Sched: transport.NewRandom(4)})
				if err != nil || !res.Ok() {
					b.Fatalf("run failed: %v", err)
				}
				msgs = res.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkE13RingBreak compares the ring protocol with the broken-ring
// relay (Figure 13), reporting metadata bytes per message.
func BenchmarkE13RingBreak(b *testing.B) {
	const n = 8
	ring := sharegraph.Ring(n)
	ringProto, err := core.NewEdgeIndexed(ring)
	if err != nil {
		b.Fatal(err)
	}
	broken, err := optimize.BreakRing(n)
	if err != nil {
		b.Fatal(err)
	}
	script := workload.SharedOnly(ring, 300, 9)
	for _, bc := range []struct {
		name string
		p    core.Protocol
	}{{"ring", ringProto}, {"broken", broken}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{Graph: ring, Protocol: bc.p, Script: script, Sched: transport.NewRandom(2)})
				if err != nil || !res.Ok() {
					b.Fatalf("run failed: %v", err)
				}
				avg = res.AvgMetaBytes()
			}
			b.ReportMetric(avg, "metaB/msg")
		})
	}
}

// BenchmarkE14ClientServer measures the Appendix E architecture end to
// end on the four-replica bridge system.
func BenchmarkE14ClientServer(b *testing.B) {
	g, err := sharegraph.New([][]sharegraph.Register{
		{"a", "c"}, {"a", "p1"}, {"b", "p2"}, {"b", "c"},
	})
	if err != nil {
		b.Fatal(err)
	}
	aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment{{1, 2}, {3, 0}})
	if err != nil {
		b.Fatal(err)
	}
	sys := clientserver.NewSystem(aug)
	scripts := [][]clientserver.ClientOp{
		{{Reg: "a"}, {Reg: "b"}, {Reg: "a", IsRead: true}},
		{{Reg: "c"}, {Reg: "c", IsRead: true}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := clientserver.Run(clientserver.RunConfig{
			Sys: sys, Scripts: scripts, Sched: transport.NewRandom(int64(n)),
		})
		if err != nil || !res.Ok() {
			b.Fatalf("run failed: %v %v", err, res.Violations)
		}
	}
}

// BenchmarkE15ProtocolMetadata sweeps the four safe-or-interesting
// protocols on one topology, reporting per-message metadata bytes — the
// headline comparison of the paper's introduction.
func BenchmarkE15ProtocolMetadata(b *testing.B) {
	g := sharegraph.Ring(8)
	script := workload.SharedOnly(g, 300, 6)
	protos := []core.Protocol{}
	if p, err := core.NewEdgeIndexed(g); err == nil {
		protos = append(protos, p)
	}
	protos = append(protos, baseline.NewMatrix(g), baseline.NewBroadcast(g))
	for _, p := range protos {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var avg float64
			var entries int
			for n := 0; n < b.N; n++ {
				res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: transport.NewRandom(8)})
				if err != nil || !res.Ok() {
					b.Fatalf("run failed: %v", err)
				}
				avg = res.AvgMetaBytes()
				entries = res.TotalMetadataEntries()
			}
			b.ReportMetric(avg, "metaB/msg")
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkE16Truncation measures truncated timestamp-graph construction
// and the entry savings on rings.
func BenchmarkE16Truncation(b *testing.B) {
	g := sharegraph.Ring(8)
	b.ReportAllocs()
	var saved int
	for n := 0; n < b.N; n++ {
		tr, exact := optimize.TruncationSavings(g, 3)
		saved = exact - tr
	}
	b.ReportMetric(float64(saved), "entries-saved")
}

// BenchmarkScaleDelivery measures the indexed delivery engine at scale:
// full oracle-audited runs on 32- and 64-replica topologies at 5k–100k
// operations, under the seeded-random and adversarial LIFO schedules.
// These sizes were unreachable before the engine rework (the seed capped
// out at rings of 8 and 300 ops), and the 100k case only became
// affordable when the oracle moved to persistent copy-on-write sets —
// the flat-clone oracle pays O(ops²/8) bytes, over a gigabyte at that
// size. The dense RandomK topology runs twice: once under the Appendix D
// loop-length truncation (MaxLen 5, the sacrificed-causality variant) and
// once untruncated (randomk32_5k_exact) — the exact Definition 5 protocol,
// reachable since the dominance-pruned loop engine replaced the
// enumerating DFS for timestamp-graph construction. The oracle still
// audits every benchmarked schedule clean.
func BenchmarkScaleDelivery(b *testing.B) {
	type scaleCase struct {
		name  string
		build func() *sharegraph.Graph
		opts  sharegraph.LoopOptions
		ops   int
	}
	cases := []scaleCase{
		{"ring32_5k", func() *sharegraph.Graph { return sharegraph.Ring(32) }, sharegraph.LoopOptions{}, 5000},
		{"ring32_50k", func() *sharegraph.Graph { return sharegraph.Ring(32) }, sharegraph.LoopOptions{}, 50000},
		{"ring64_50k", func() *sharegraph.Graph { return sharegraph.Ring(64) }, sharegraph.LoopOptions{}, 50000},
		{"ring64_100k", func() *sharegraph.Graph { return sharegraph.Ring(64) }, sharegraph.LoopOptions{}, 100000},
		{"randomk32_5k", func() *sharegraph.Graph { return sharegraph.RandomK(32, 96, 3, 7) }, sharegraph.LoopOptions{MaxLen: 5}, 5000},
		{"randomk32_5k_exact", func() *sharegraph.Graph { return sharegraph.RandomK(32, 96, 3, 7) }, sharegraph.LoopOptions{}, 5000},
	}
	type schedCase struct {
		name string
		make func() transport.Scheduler
	}
	scheds := []schedCase{
		{"random", func() transport.Scheduler { return transport.NewRandom(11) }},
		{"lifo", func() transport.Scheduler { return transport.LIFOScheduler{} }},
	}
	for _, tc := range cases {
		g := tc.build()
		p, err := core.NewEdgeIndexedWithGraphs(g, sharegraph.BuildAllTSGraphs(g, tc.opts), "edge-indexed")
		if err != nil {
			b.Fatal(err)
		}
		script := workload.SharedOnly(g, tc.ops, 1)
		for _, sc := range scheds {
			b.Run(tc.name+"/"+sc.name, func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					res, err := sim.Run(sim.Config{Graph: g, Protocol: p, Script: script, Sched: sc.make()})
					if err != nil || !res.Ok() {
						b.Fatalf("run failed: %v %+v", err, res)
					}
				}
				b.ReportMetric(float64(tc.ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkDrainOutOfOrder isolates the delivery engine's core win: one
// sender's updates arriving fully reversed, so every update buffers until
// the first-sent arrives and then the whole buffer cascades. The
// reference engine rescans the buffer on every arrival — O(P²)
// deliverability checks per window — while the indexed engine files each
// arrival in O(1) and walks the sender chain once, so its ns/msg and
// allocs/msg stay flat as the pending window grows.
func BenchmarkDrainOutOfOrder(b *testing.B) {
	g := sharegraph.Line(2)
	for _, engine := range []struct {
		name  string
		build func(*sharegraph.Graph) (*core.EdgeIndexed, error)
	}{
		{"indexed", core.NewEdgeIndexed},
		{"naive", core.NewEdgeIndexedNaive},
	} {
		p, err := engine.build(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, window := range []int{64, 256, 1024} {
			// Pre-generate the reversed message sequence once.
			nodes, err := p.NewNodes()
			if err != nil {
				b.Fatal(err)
			}
			envs := make([]core.Envelope, window)
			for i := 0; i < window; i++ {
				out, err := core.CollectWrite(nodes[0], "seg0", core.Value(i), causality.UpdateID(i))
				if err != nil || len(out) != 1 {
					b.Fatalf("write %d: %v %v", i, err, out)
				}
				envs[window-1-i] = out[0]
			}
			b.Run(fmt.Sprintf("%s/window%d", engine.name, window), func(b *testing.B) {
				b.ReportAllocs()
				applies := 0
				for n := 0; n < b.N; n++ {
					recv, err := p.NewNodes()
					if err != nil {
						b.Fatal(err)
					}
					// The edge-indexed protocol never forwards; a discard
					// sink keeps the measurement free of collection cost.
					for _, e := range envs {
						applies += len(recv[1].HandleMessage(e, core.DiscardSink{}))
					}
					if recv[1].PendingCount() != 0 {
						b.Fatal("window did not drain")
					}
				}
				if applies != b.N*window {
					b.Fatalf("applied %d of %d", applies, b.N*window)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*window), "ns/msg")
			})
		}
	}
}

// BenchmarkClusterThroughput measures the live worker-pool runtime at
// scale: Ring(32) at 10k concurrent client ops end to end — oracle audit,
// inbox backpressure and quiesce included. A sampler asserts the runtime
// property that makes this size reachable at all: the goroutine count
// stays at workers + drivers + constant overhead, never O(messages) as
// under the old goroutine-per-message dispatch.
//
// The /base row runs with the fault layer disarmed and is the gated
// number: fault hooks must reduce to one nil check on the delivery
// path, so /base regressing against a pre-chaos baseline means the
// hooks leak cost into the common case. The /chaos row runs the same
// workload under an ambient loss/duplication lottery and measures what
// injected faults cost (retransmit pump, duplicate deliveries, dup
// hardening in the ingest queues).
func BenchmarkClusterThroughput(b *testing.B) {
	g := sharegraph.Ring(32)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		b.Fatal(err)
	}
	const ops = 10000
	const workers = 8
	script := workload.Uniform(g, ops, 7)

	run := func(b *testing.B, chaos bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			base := runtime.NumGoroutine()
			opts := []sim.ClusterOption{sim.WithWorkers(workers), sim.WithSeed(int64(n + 1))}
			if chaos {
				opts = append(opts, sim.WithChaos(FaultPlan{
					Seed:    int64(n + 1),
					Default: EdgeFault{Drop: 0.005, Dup: 0.005},
				}))
			}
			c, err := sim.NewCluster(g, p, opts...)
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var peak atomic.Int64
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
						if g := int64(runtime.NumGoroutine()); g > peak.Load() {
							peak.Store(g)
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
			violations := c.RunScript(script)
			close(stop)
			if len(violations) != 0 {
				b.Fatalf("live run not clean: %d violations", len(violations))
			}
			// Injected duplicates park dead in the ingest queues and stay
			// counted as pending; the liveness audit above already proved
			// every genuine update applied, so only the base row may
			// demand an empty buffer.
			if !chaos && c.PendingTotal() != 0 {
				b.Fatalf("live run not clean: %d stuck", c.PendingTotal())
			}
			c.Close()
			// The chaos engine adds exactly one goroutine: the retransmit
			// pump.
			bound := int64(base + workers + g.NumReplicas() + 8)
			if chaos {
				bound++
			}
			if peak.Load() > bound {
				b.Fatalf("goroutine count %d exceeds worker-pool bound %d", peak.Load(), bound)
			}
		}
		b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}

	b.Run("base", func(b *testing.B) { run(b, false) })
	b.Run("chaos", func(b *testing.B) { run(b, true) })
}

// BenchmarkMetricsOverhead measures what the observability registry
// costs, mirroring BenchmarkClusterThroughput's base/chaos split: the
// /disarmed row is the gated number — without ClusterOptions.Metrics
// every instrumentation site must reduce to one nil check, so this row
// regressing means the hooks leak cost into the common case. The
// /armed row runs the identical workload with the registry collecting
// per-replica, per-edge and queue-depth counters and measures the
// documented price of turning it on.
func BenchmarkMetricsOverhead(b *testing.B) {
	g := sharegraph.Ring(32)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		b.Fatal(err)
	}
	const ops = 10000
	const workers = 8
	script := workload.Uniform(g, ops, 7)

	run := func(b *testing.B, armed bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			opts := []sim.ClusterOption{sim.WithWorkers(workers), sim.WithSeed(int64(n + 1))}
			if armed {
				opts = append(opts, sim.WithMetrics())
			}
			c, err := sim.NewCluster(g, p, opts...)
			if err != nil {
				b.Fatal(err)
			}
			violations := c.RunScript(script)
			if len(violations) != 0 {
				b.Fatalf("live run not clean: %d violations", len(violations))
			}
			if armed {
				// The registry must agree with the authoritative transport
				// counter — per-edge attribution sums to the total.
				m := c.Metrics()
				var sent int64
				for _, e := range m.Edges {
					sent += e.Sent
				}
				if sent != c.MessagesSent() {
					b.Fatalf("edge sent sum %d != messages sent %d", sent, c.MessagesSent())
				}
			}
			c.Close()
		}
		b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}

	b.Run("disarmed", func(b *testing.B) { run(b, false) })
	b.Run("armed", func(b *testing.B) { run(b, true) })
}

// BenchmarkClientServerLive measures the Appendix E architecture on the
// shared worker-pool engine at Ring(32) scale: 32 concurrent clients
// (one per adjacent replica pair) issuing synchronous writes and
// J1-blocking reads, oracle audit and quiesce included. A sampler
// asserts the property the engine port buys: goroutine count stays at
// workers + clients + constant overhead, never O(updates) as under the
// old per-update goroutine dispatch.
func BenchmarkClientServerLive(b *testing.B) {
	const n = 32
	const opsPerClient = 100
	const workers = 8
	stores := make([][]Register, n)
	clients := make([][]ReplicaID, n)
	reg := func(i int) Register { return Register(fmt.Sprintf("ring%d", i)) }
	for i := 0; i < n; i++ {
		stores[i] = []Register{reg((i + n - 1) % n), reg(i)}
		clients[i] = []ReplicaID{ReplicaID(i), ReplicaID((i + 1) % n)}
	}
	cs, err := NewClientServer(stores, clients)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		base := runtime.NumGoroutine()
		live := cs.LiveWith(ClusterOptions{Workers: workers, Seed: int64(iter + 1)})
		stop := make(chan struct{})
		var peak atomic.Int64
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					if g := int64(runtime.NumGoroutine()); g > peak.Load() {
						peak.Store(g)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
		var wg sync.WaitGroup
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lc := live.Client(ClientID(c))
				for k := 1; k <= opsPerClient; k++ {
					if k%5 == 0 {
						if _, err := lc.Read(reg(c)); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					if err := lc.Write(reg(c), Value(c*1000+k)); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		live.Sync()
		close(stop)
		if err := live.Check(); err != nil {
			b.Fatal(err)
		}
		if m := live.Metrics(); m.Updates == 0 || m.MetaBytes == 0 {
			b.Fatalf("empty transport stats (%d updates, %d bytes)", m.Updates, m.MetaBytes)
		}
		live.Close()
		if bound := int64(base + workers + n + 8); peak.Load() > bound {
			b.Fatalf("goroutine count %d exceeds worker-pool bound %d", peak.Load(), bound)
		}
	}
	b.ReportMetric(float64(n*opsPerClient)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkShardedThroughput measures the sharded multi-space runtime:
// thousands of independent Ring(8) spaces multiplexed over one shared
// worker pool, driven by a zipf-skewed multi-tenant workload with
// per-shard envelope batching. The /seq1k row is the architectural
// baseline the shard layer is gated against: the same 1k per-space
// scripts run on 1k sequentially created single-space clusters (the
// repo's pre-shard way to host a space, oracle included) with the same
// worker budget — paying per-space pool spin-up/teardown and unbatched
// delivery, exactly the costs sharding amortizes. The shard package's
// TestShardedBeatsSequentialClusters pins the ratio at ≥5×.
func BenchmarkShardedThroughput(b *testing.B) {
	g := sharegraph.Ring(8)
	p, err := core.NewEdgeIndexed(g)
	if err != nil {
		b.Fatal(err)
	}
	const workers = 8
	const opsPerSpace = 16
	shardedRow := func(spaces int) func(b *testing.B) {
		ops := spaces * opsPerSpace
		ms, err := workload.GenerateMulti(g, workload.MultiOptions{Spaces: spaces, Ops: ops, Zipf: 1.2, Seed: 5})
		return func(b *testing.B) {
			if err != nil {
				b.Fatal(err)
			}
			// The runtime is the long-lived multi-tenant service under
			// measurement: its spaces stay resident across workload waves,
			// which is exactly what the sequential baseline cannot do on
			// the same worker budget.
			r, err := shard.New(g, p, shard.Options{Spaces: spaces, Workers: workers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				r.RunMulti(ms, 0)
			}
			b.StopTimer()
			st := r.Stats()
			if st.Messages == 0 {
				b.Fatal("no envelopes delivered")
			}
			b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(st.AvgBatch(), "env/batch")
		}
	}
	b.Run("spaces1k", shardedRow(1000))
	b.Run("spaces8k", shardedRow(8000))
	b.Run("seq1k", func(b *testing.B) {
		const spaces = 1000
		ms, err := workload.GenerateMulti(g, workload.MultiOptions{Spaces: spaces, Ops: spaces * opsPerSpace, Zipf: 1.2, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		scripts := make([]workload.Script, spaces)
		for s := range scripts {
			scripts[s] = ms.PerSpace(s)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for s := 0; s < spaces; s++ {
				if len(scripts[s]) == 0 {
					continue
				}
				c, err := sim.NewCluster(g, p,
					sim.WithWorkers(workers),
					sim.WithSeed(workload.SpaceSeed(int64(n+1), s)))
				if err != nil {
					b.Fatal(err)
				}
				if v := c.RunScript(scripts[s]); len(v) != 0 {
					b.Fatalf("space %d: %d oracle violations", s, len(v))
				}
				c.Close()
			}
		}
		b.ReportMetric(float64(spaces*opsPerSpace)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
}

// BenchmarkLiveCluster measures the worker-pool runtime end to end on the
// quickstart system (small topology, per-write cost dominated).
func BenchmarkLiveCluster(b *testing.B) {
	sys, err := New([][]Register{{"x"}, {"x", "y"}, {"y", "z"}, {"z"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c, err := sys.Cluster()
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			if err := c.Write(1, "y", Value(k)); err != nil {
				b.Fatal(err)
			}
		}
		c.Sync()
		if err := c.Check(); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkPlacementSearch measures the seeded placement search end to
// end. Every candidate evaluation rebuilds the effective graph's
// timestamp graphs — the search's dominant cost — so with a fixed
// deterministic budget (same seed, same moves, same evaluation count)
// ns/op growth here means candidate evaluation itself got slower. Gated
// by prcc-benchgate. The entries_saved metric pins the search's result
// quality alongside its cost: ring cases must rediscover the line
// (2n² → 4n−4).
func BenchmarkPlacementSearch(b *testing.B) {
	cases := []struct {
		name string
		g    *sharegraph.Graph
		opts optimize.SearchOptions
	}{
		{"ring8", sharegraph.Ring(8), optimize.SearchOptions{Seed: 1}},
		{"ring16", sharegraph.Ring(16), optimize.SearchOptions{Seed: 1}},
		{"randomk16", sharegraph.RandomK(16, 40, 3, 7), optimize.SearchOptions{Seed: 1, Restarts: 1, MaxEvals: 12}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *optimize.SearchResult
			for n := 0; n < b.N; n++ {
				var err error
				res, err = optimize.Search(tc.g, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.BaseEntries-res.Entries), "entries_saved")
		})
	}
}
