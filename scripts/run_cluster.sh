#!/usr/bin/env bash
# run_cluster.sh — build the deployment binaries, generate a cluster
# config, and launch one prcc-node process per replica on loopback.
#
# Usage: scripts/run_cluster.sh [rundir]
#   default rundir: .prcc-cluster (created; holds binaries, config, logs
#                   and pids; pass the same dir to stop_cluster.sh)
#
# Environment knobs:
#   TOPOLOGY (ring)  N (3)  PROTOCOL (edge-indexed)  BASEPORT (42100)
#   HOST (127.0.0.1)  SEED (1)
#   STATUSBASE (unset) — when set, replica $id additionally serves
#     /statusz and /metricsz on $HOST:$((STATUSBASE+id))
#
# The cluster serves until scripts/stop_cluster.sh performs the orderly
# quiesce-then-shutdown (or the pids are killed). Drive workloads with:
#   .prcc-cluster/prcc-client -config .prcc-cluster/cluster.json \
#       -ops 400 -seed 11 -snapshot
set -euo pipefail

cd "$(dirname "$0")/.."

rundir="${1:-.prcc-cluster}"
topology="${TOPOLOGY:-ring}"
n="${N:-3}"
protocol="${PROTOCOL:-edge-indexed}"
baseport="${BASEPORT:-42100}"
host="${HOST:-127.0.0.1}"
seed="${SEED:-1}"
statusbase="${STATUSBASE:-}"

mkdir -p "$rundir"
go build -o "$rundir/prcc-node" ./cmd/prcc-node
go build -o "$rundir/prcc-client" ./cmd/prcc-client

config="$rundir/cluster.json"
"$rundir/prcc-client" -emit-config -topology "$topology" -n "$n" \
  -protocol "$protocol" -host "$host" -baseport "$baseport" \
  -seed "$seed" > "$config"

replicas=$(grep -c '"addr"' "$config")
: > "$rundir/pids"
for (( id=0; id<replicas; id++ )); do
  status_args=()
  if [[ -n "$statusbase" ]]; then
    status_args=(-status "$host:$((statusbase+id))")
  fi
  "$rundir/prcc-node" -config "$config" -id "$id" "${status_args[@]}" \
    > "$rundir/node$id.log" 2>&1 &
  echo $! >> "$rundir/pids"
done

# Wait until every replica answers a status poll (0 ops = no workload,
# just dial + quiesce), so callers can pipeline a workload immediately.
"$rundir/prcc-client" -config "$config" -ops 0 -dial-timeout 10s
echo "cluster up: $replicas replicas ($topology/$protocol) — config $config, logs and pids in $rundir"
