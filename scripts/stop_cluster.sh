#!/usr/bin/env bash
# stop_cluster.sh — orderly shutdown of a cluster started by
# run_cluster.sh: quiesce, then send every replica a Shutdown frame and
# wait for the processes to exit. Falls back to SIGTERM for processes
# that outlive the grace period.
#
# Usage: scripts/stop_cluster.sh [rundir]
#   default rundir: .prcc-cluster (the run_cluster.sh default)
set -euo pipefail

cd "$(dirname "$0")/.."

rundir="${1:-.prcc-cluster}"
config="$rundir/cluster.json"

if [ ! -f "$rundir/pids" ]; then
  echo "stop_cluster.sh: no pid file in $rundir — nothing to stop" >&2
  exit 1
fi

# Orderly path: quiesce and broadcast Shutdown frames. A cluster that is
# already gone makes the client fail to dial; the kill fallback below
# still reaps any survivors.
if [ -f "$config" ]; then
  "$rundir/prcc-client" -config "$config" -ops 0 -dial-timeout 5s -shutdown \
    || echo "stop_cluster.sh: orderly shutdown failed; falling back to signals" >&2
fi

deadline=$(( $(date +%s) + 10 ))
while read -r pid; do
  while kill -0 "$pid" 2>/dev/null; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "stop_cluster.sh: pid $pid outlived the grace period; sending SIGTERM" >&2
      kill "$pid" 2>/dev/null || true
      break
    fi
    sleep 0.2
  done
done < "$rundir/pids"
rm -f "$rundir/pids"
echo "cluster stopped"
