#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with allocation reporting and
# capture the results as JSON, starting the repository's performance
# trajectory (BENCH_PR<n>.json per PR; compare with benchstat or jq).
#
# Usage: scripts/bench.sh [output.json] [go-bench-regex]
#   default output: BENCH_PR3.json at the repo root
#   default regex:  . (every benchmark in the root harness)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR3.json}"
pattern="${2:-.}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running benchmarks (pattern: $pattern) ..." >&2
go test -run xxx -bench "$pattern" -benchmem -benchtime 1s . | tee "$tmp" >&2

# Convert `go test -bench` lines into a JSON array. Fields beyond the
# canonical ns/op, B/op and allocs/op (custom ReportMetric values such as
# ops/s or metaB/msg) are kept as extra key/value pairs.
awk '
/^Benchmark/ {
    n = split($0, f, /[ \t]+/)
    printf "%s{\"name\":\"%s\",\"iterations\":%s", sep, f[1], f[2]
    for (i = 3; i + 1 <= n; i += 2) {
        unit = f[i+1]
        gsub(/"/, "", unit)
        printf ",\"%s\":%s", unit, f[i]
    }
    printf "}"
    sep = ",\n"
}
BEGIN { printf "[" }
END   { print "]" }
' "$tmp" > "$out"

echo "wrote $out" >&2
