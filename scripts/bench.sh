#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with allocation reporting and
# capture the results as JSON, starting the repository's performance
# trajectory (BENCH_PR<n>.json per PR; compare with benchstat or jq).
#
# Usage: scripts/bench.sh [output.json] [go-bench-regex]
#   default output: BENCH_PR<n+1>.json at the repo root, where <n> is the
#                   highest existing BENCH_PR<n>.json — each PR's run lands
#                   in a fresh file without touching the checked-in history
#   default regex:  . (every benchmark in the root harness)
#
# CI compares a capture against the latest checked-in BENCH_PR<n>.json
# with cmd/prcc-benchgate (and renders a benchstat diff via its -text
# mode); see .github/workflows/ci.yml.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ -n "${1:-}" ]; then
  out="$1"
else
  # `|| true` keeps set -e/pipefail from aborting when no capture exists
  # yet; the fallback then starts the trajectory at BENCH_PR1.json.
  latest=$( (ls BENCH_PR*.json 2>/dev/null || true) \
    | sed -En 's/^BENCH_PR([0-9]+)\.json$/\1/p' | sort -n | tail -1)
  out="BENCH_PR$(( ${latest:-0} + 1 )).json"
fi
pattern="${2:-.}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running benchmarks (pattern: $pattern) ..." >&2
go test -run xxx -bench "$pattern" -benchmem -benchtime 1s . | tee "$tmp" >&2

# Convert `go test -bench` lines into a JSON array. Fields beyond the
# canonical ns/op, B/op and allocs/op (custom ReportMetric values such as
# ops/s or metaB/msg) are kept as extra key/value pairs.
awk '
/^cpu:/ {
    # Record the capture hardware so the gate knows when ns/op numbers
    # are comparable (cross-machine timing comparison is meaningless).
    cpu = $0
    sub(/^cpu: */, "", cpu)
    gsub(/"/, "", cpu)
    printf "%s{\"name\":\"_env\",\"cpu\":\"%s\"}", sep, cpu
    sep = ",\n"
}
/^Benchmark/ {
    n = split($0, f, /[ \t]+/)
    # go test suffixes names with -GOMAXPROCS on multi-core machines;
    # strip it so captures from different machines share names.
    sub(/-[0-9]+$/, "", f[1])
    printf "%s{\"name\":\"%s\",\"iterations\":%s", sep, f[1], f[2]
    for (i = 3; i + 1 <= n; i += 2) {
        unit = f[i+1]
        gsub(/"/, "", unit)
        printf ",\"%s\":%s", unit, f[i]
    }
    printf "}"
    sep = ",\n"
}
BEGIN { printf "[" }
END   { print "]" }
' "$tmp" > "$out"

echo "wrote $out" >&2
