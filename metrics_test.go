package prcc

import "testing"

// TestUnifiedMetricsSchema pins the API-redesign acceptance criterion at
// the public surface: every in-process runtime returns the same Metrics
// snapshot type, tagged with its runtime name, with legacy totals always
// present and per-replica/per-edge breakdowns present when armed. (The
// fourth runtime, wire.Node/wire.Client, is pinned to the same schema in
// internal/wire's status tests over real TCP and HTTP.)
func TestUnifiedMetricsSchema(t *testing.T) {
	sys := fig3System(t)

	// Cluster, armed.
	cluster, err := sys.ClusterWith(ClusterOptions{Metrics: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cluster.Write(1, "y", Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Sync()
	cm := cluster.Metrics()
	cluster.Close()
	if cm.Runtime != "cluster" {
		t.Errorf("cluster runtime tag = %q", cm.Runtime)
	}
	if cm.Messages == 0 || cm.MetaBytes == 0 {
		t.Errorf("cluster legacy totals empty: %+v", cm)
	}
	if len(cm.Replicas) != sys.NumReplicas() || len(cm.Edges) == 0 {
		t.Errorf("armed cluster lacks breakdowns: replicas=%d edges=%d", len(cm.Replicas), len(cm.Edges))
	}

	// Client-server live deployment, armed.
	cs, err := NewClientServer(
		[][]Register{{"a", "c"}, {"a"}, {"b"}, {"b", "c"}},
		[][]ReplicaID{{1, 2}, {3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	live := cs.LiveWith(ClusterOptions{Metrics: true, Seed: 4})
	alice := live.Client(0)
	for i := 0; i < 10; i++ {
		if err := alice.Write("a", Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	live.Sync()
	lm := live.Metrics()
	live.Close()
	if lm.Runtime != "clientserver" {
		t.Errorf("clientserver runtime tag = %q", lm.Runtime)
	}
	if lm.Updates == 0 || lm.MetaBytes == 0 {
		t.Errorf("clientserver legacy totals empty: %+v", lm)
	}
	if len(lm.Replicas) == 0 || len(lm.Edges) == 0 {
		t.Errorf("armed clientserver lacks breakdowns: replicas=%d edges=%d", len(lm.Replicas), len(lm.Edges))
	}

	// Sharded multi-space runtime, armed. Replica counters aggregate
	// across spaces; queue gauges stay per shard (a distinct index space).
	sh, err := sys.ShardedWith(ShardOptions{Spaces: 4, Shards: 2, Metrics: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 5; i++ {
			if err := sh.Write(s, 1, "y", Value(i+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sh.Sync()
	sm := sh.Metrics()
	sh.Close()
	if sm.Runtime != "sharded" {
		t.Errorf("sharded runtime tag = %q", sm.Runtime)
	}
	if sm.Batches == 0 || sm.Envelopes == 0 || sm.MetaBytes == 0 {
		t.Errorf("sharded legacy totals empty: %+v", sm)
	}
	if len(sm.Replicas) != sys.NumReplicas() || len(sm.Edges) == 0 {
		t.Errorf("armed sharded lacks breakdowns: replicas=%d edges=%d", len(sm.Replicas), len(sm.Edges))
	}
	if len(sm.Queues) != 2 {
		t.Errorf("sharded queue gauges = %d rows, want one per shard (2)", len(sm.Queues))
	}

	// The LoadAware opt-in arms metrics implicitly.
	la, err := sys.ClusterWith(ClusterOptions{LoadAware: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Write(1, "y", 7); err != nil {
		t.Fatal(err)
	}
	la.Sync()
	am := la.Metrics()
	la.Close()
	if len(am.Replicas) == 0 {
		t.Error("LoadAware cluster did not arm the metrics registry")
	}
}
