package prcc

import (
	"fmt"

	"repro/internal/clientserver"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/sharegraph"
	"repro/internal/transport"
)

// ClientID identifies a client in the client-server architecture.
type ClientID = sharegraph.ClientID

// ClientServerSystem is the Appendix E architecture: clients carry their
// own timestamps and may access arbitrary replica subsets, propagating
// causal dependencies even between replicas that share no registers. The
// timestamp graphs are computed over the augmented share graph
// (Definition 16).
type ClientServerSystem struct {
	sys *clientserver.System
}

// NewClientServer builds a client-server system: stores[i] is replica i's
// register set, clients[c] is R_c, the replicas client c may access (order
// expresses routing preference).
func NewClientServer(stores [][]Register, clients [][]ReplicaID) (*ClientServerSystem, error) {
	g, err := sharegraph.New(stores)
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	aug, err := sharegraph.NewAugmented(g, sharegraph.ClientAssignment(clients))
	if err != nil {
		return nil, fmt.Errorf("prcc: %w", err)
	}
	return &ClientServerSystem{sys: clientserver.NewSystem(aug)}, nil
}

// ServerEntries returns |Ê_i| for replica i (augmented timestamp size).
func (c *ClientServerSystem) ServerEntries(i ReplicaID) int {
	return c.sys.ReplicaGraphs[i].Len()
}

// ClientEntries returns the length of client c's timestamp µ_c.
func (c *ClientServerSystem) ClientEntries(id ClientID) int {
	return c.sys.ClientGraphs[id].Len()
}

// ClientOp is one operation of a client program.
type ClientOp = clientserver.ClientOp

// Live starts a concurrent deployment on the shared worker-pool engine:
// inter-replica updates flow through bounded per-replica inboxes drained
// by a fixed delivery pool (the same runtime as Cluster), and client
// calls are synchronous and blocking (a read blocks until the replica has
// caught up with the client's causal past — predicate J1). Defaults:
// GOMAXPROCS workers, no artificial delivery delay (the engine's seeded
// inbox shuffle reorders deliveries regardless).
func (c *ClientServerSystem) Live() *LiveClientServer {
	return &LiveClientServer{inner: clientserver.NewLive(c.sys)}
}

// LiveWith starts a concurrent deployment with explicit runtime options —
// the same ClusterOptions surface the replica cluster takes. SkipAudit is
// ignored: the client-server oracle also carries the Definition 26 client
// clauses the tests rely on. A zero MaxDelay means no artificial delivery
// jitter.
func (c *ClientServerSystem) LiveWith(opts ClusterOptions) *LiveClientServer {
	ro := rt.Options{
		Workers:       opts.Workers,
		InboxCapacity: opts.InboxCapacity,
		MaxDelay:      opts.MaxDelay,
		Seed:          opts.Seed,
	}
	if opts.Metrics || opts.LoadAware {
		n := len(c.sys.ReplicaGraphs)
		ro.Obs = obs.New(n, n)
	}
	return &LiveClientServer{inner: clientserver.NewLiveWith(c.sys, ro)}
}

// LiveClientServer is a running client-server deployment.
type LiveClientServer struct {
	inner *clientserver.LiveSystem
}

// Client returns a synchronous handle for client id. Handles issue one
// operation at a time; distinct clients may run concurrently.
func (l *LiveClientServer) Client(id ClientID) *LiveClient {
	return &LiveClient{inner: l.inner.Client(id)}
}

// LiveClient issues blocking reads and writes for one client.
type LiveClient struct {
	inner *clientserver.LiveClient
}

// Write performs write(x, v), blocking until a replica accepts it.
func (lc *LiveClient) Write(x Register, v Value) error { return lc.inner.Write(x, v) }

// Read performs read(x), blocking until the serving replica satisfies the
// client's causal past.
func (lc *LiveClient) Read(x Register) (Value, error) { return lc.inner.Read(x) }

// Sync blocks until all inter-replica updates have been applied.
func (l *LiveClientServer) Sync() { l.inner.Quiesce() }

// Metrics returns the deployment's unified metrics snapshot: legacy
// totals always, per-replica and per-edge breakdowns when
// ClusterOptions.Metrics armed the registry at LiveWith.
func (l *LiveClientServer) Metrics() Metrics { return l.inner.Metrics() }

// Stats reports transport-level counters: inter-replica updates
// dispatched and their total metadata bytes.
//
// Deprecated: use Metrics, whose Updates and MetaBytes fields carry the
// same totals in the unified cross-runtime snapshot schema.
func (l *LiveClientServer) Stats() (updates int64, metaBytes int64) {
	m := l.Metrics()
	return m.Updates, m.MetaBytes
}

// Workers returns the delivery worker-pool size.
func (l *LiveClientServer) Workers() int { return l.inner.Workers() }

// Outstanding returns the number of in-flight inter-replica updates
// (buffered or being delivered). After Close it is zero.
func (l *LiveClientServer) Outstanding() int { return l.inner.Outstanding() }

// Check audits the execution (including Definition 26's client clauses
// and liveness at quiescence).
func (l *LiveClientServer) Check() error {
	l.inner.CheckLiveness()
	vs := l.inner.Tracker().Violations()
	if len(vs) == 0 {
		return nil
	}
	return fmt.Errorf("prcc: %d violations, first: %s", len(vs), vs[0])
}

// Close drains and shuts the deployment down.
func (l *LiveClientServer) Close() { l.inner.Close() }

// ClientSimReport is the outcome of a client-server simulation.
type ClientSimReport struct {
	Requests    int
	Responses   int
	Updates     int
	MetaBytes   int
	Violations  []Violation
	AllFinished bool
}

// Ok reports a clean run.
func (r ClientSimReport) Ok() bool { return len(r.Violations) == 0 && r.AllFinished }

// Simulate runs per-client programs (scripts[c] is client c's op
// sequence, executed with each client waiting for its previous response)
// under a seeded-random schedule, audited by the oracle including the
// Definition 26 client clauses.
func (c *ClientServerSystem) Simulate(scripts [][]ClientOp, seed int64) (ClientSimReport, error) {
	res, err := clientserver.Run(clientserver.RunConfig{
		Sys:     c.sys,
		Scripts: scripts,
		Sched:   transport.NewRandom(seed),
	})
	if err != nil {
		return ClientSimReport{}, fmt.Errorf("prcc: %w", err)
	}
	return ClientSimReport{
		Requests:    res.Requests,
		Responses:   res.Responses,
		Updates:     res.UpdatesSent,
		MetaBytes:   res.MetaBytes,
		Violations:  res.Violations,
		AllFinished: res.UnfinishedOps == 0 && res.StuckRequests == 0 && res.StuckUpdates == 0,
	}, nil
}
