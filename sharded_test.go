package prcc

import (
	"testing"
)

// TestShardedFacade drives the sharded multi-space runtime through the
// public surface: isolated per-space writes over a shared worker pool,
// audit, routing keys, snapshots matching an independent single-space
// cluster, and batching stats.
func TestShardedFacade(t *testing.T) {
	sys := fig3System(t)
	const spaces = 6
	sh, err := sys.ShardedWith(ShardOptions{Spaces: spaces, Shards: 2, Audit: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Spaces() != spaces || sh.Shards() != 2 || sh.Workers() < 2 {
		t.Fatalf("geometry: spaces=%d shards=%d workers=%d", sh.Spaces(), sh.Shards(), sh.Workers())
	}

	// Distinct values per space: isolation means no bleed-through.
	for s := 0; s < spaces; s++ {
		for i := 0; i < 20; i++ {
			if err := sh.Write(s, 1, "y", Value(100*s+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sh.Sync()
	for s := 0; s < spaces; s++ {
		want := Value(100*s + 19)
		if v, ok := sh.Read(2, 0, "x"); s == 2 && ok && v != 0 {
			t.Errorf("unwritten register x reads %d", v)
		}
		for _, r := range []ReplicaID{1, 2} {
			if v, ok := sh.Read(s, r, "y"); !ok || v != want {
				t.Errorf("space %d replica %d: y = (%d,%v), want (%d,true)", s, r, v, ok, want)
			}
		}
	}
	if err := sh.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}

	// Snapshot of one space has the cluster shape: one map per replica.
	snap := sh.Snapshot(3)
	if len(snap) != sys.NumReplicas() {
		t.Fatalf("Snapshot has %d replicas, want %d", len(snap), sys.NumReplicas())
	}
	if snap[1]["y"] != 319 || snap[2]["y"] != 319 {
		t.Errorf("snapshot of space 3: %v", snap)
	}

	// Routing keys round-trip and agree with the shard mapping.
	key := sh.Key(5, "y")
	if key != "s5/y" {
		t.Errorf("Key = %q", key)
	}
	space, shardID, reg, err := sh.Resolve(key)
	if err != nil || space != 5 || shardID != 5%2 || reg != "y" {
		t.Errorf("Resolve(%q) = (%d,%d,%q,%v)", key, space, shardID, reg, err)
	}
	if _, _, _, err := sh.Resolve("nonsense"); err == nil {
		t.Error("Resolve accepted garbage")
	}

	if m := sh.Metrics(); m.Batches <= 0 || m.Envelopes < m.Batches || m.MetaBytes <= 0 {
		t.Errorf("Metrics = (%d,%d,%d)", m.Batches, m.Envelopes, m.MetaBytes)
	}

	// Validation surface.
	if err := sh.Write(spaces, 1, "y", 1); err == nil {
		t.Error("out-of-range space accepted")
	}
	if err := sh.Write(0, 0, "y", 1); err == nil {
		t.Error("write at non-holder accepted")
	}
	if _, err := sys.ShardedWith(ShardOptions{}); err == nil {
		t.Error("zero spaces accepted")
	}
}

// TestShardedMatchesCluster pins one sharded space against an
// independent Cluster run of the same operations through the facade.
func TestShardedMatchesCluster(t *testing.T) {
	sys := fig3System(t)
	sh, err := sys.ShardedWith(ShardOptions{Spaces: 3, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	cl, err := sys.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type op struct {
		r ReplicaID
		x Register
		v Value
	}
	ops := []op{{0, "x", 1}, {1, "y", 2}, {2, "z", 3}, {1, "x", 4}, {2, "y", 5}, {3, "z", 6}}
	for _, o := range ops {
		if err := sh.Write(1, o.r, o.x, o.v); err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(o.r, o.x, o.v); err != nil {
			t.Fatal(err)
		}
	}
	sh.Sync()
	cl.Sync()
	if err := sh.Check(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Check(); err != nil {
		t.Fatal(err)
	}
	snap := sh.Snapshot(1)
	for r := 0; r < sys.NumReplicas(); r++ {
		for _, x := range sys.Registers() {
			cv, cok := cl.Read(ReplicaID(r), x)
			sv, sok := snap[r][x]
			if cok != sok || (cok && cv != sv) {
				t.Errorf("replica %d %s: sharded (%d,%v) vs cluster (%d,%v)", r, x, sv, sok, cv, cok)
			}
		}
	}
	// The other spaces saw none of it.
	for _, s := range []int{0, 2} {
		if v, ok := sh.Read(s, 1, "y"); ok && v != 0 {
			t.Errorf("space %d leaked y=%d", s, v)
		}
	}
}
