package prcc

import (
	"testing"
	"time"
)

// TestClusterChaosFacade exercises the public fault-injection surface on
// a manually driven cluster: arming chaos, partition/heal, checkpoint,
// crash/restart with state transfer, fault counters and membership.
func TestClusterChaosFacade(t *testing.T) {
	sys := fig3System(t)
	cluster, err := sys.ClusterWith(ClusterOptions{
		Chaos:     &FaultPlan{Seed: 5, Default: EdgeFault{Drop: 0.05}},
		Heartbeat: &HeartbeatOptions{Interval: 200 * time.Microsecond, Threshold: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Partition(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Write(0, "x", 7); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Heal(0, 2); err != nil {
		t.Fatal(err)
	}

	if err := cluster.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Write(3, "z", 9); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Write(3, "z", 10); err == nil {
		t.Error("write at crashed replica accepted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for cluster.MemberStatus(3) != MemberDown {
		if time.Now().After(deadline) {
			t.Fatalf("detector never declared replica 3 down (status %v)", cluster.MemberStatus(3))
		}
		time.Sleep(time.Millisecond)
	}
	if err := cluster.Restart(3); err != nil {
		t.Fatal(err)
	}
	cluster.Sync()
	if v, ok := cluster.Read(3, "z"); !ok || v != 9 {
		t.Errorf("Read(3,z) after restart = (%d,%v), want (9,true)", v, ok)
	}
	if err := cluster.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if len(cluster.MembershipEvents()) == 0 {
		t.Error("no membership events recorded")
	}

	if err := cluster.Crash(9); err == nil {
		t.Error("out-of-range crash accepted")
	}
	if err := cluster.Partition(0, 99, 0); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if err := cluster.HealAll(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterChaosDisarmed pins the error contract of the chaos methods
// on a cluster built without ClusterOptions.Chaos.
func TestClusterChaosDisarmed(t *testing.T) {
	sys := fig3System(t)
	cluster, err := sys.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Partition(0, 1, 0); err == nil {
		t.Error("Partition without chaos accepted")
	}
	if err := cluster.Crash(1); err == nil {
		t.Error("Crash without chaos accepted")
	}
	if d, u := cluster.FaultStats(); d != 0 || u != 0 {
		t.Errorf("FaultStats = (%d,%d) without chaos", d, u)
	}
	if cluster.MemberStatus(2) != MemberAlive {
		t.Error("MemberStatus without heartbeat not alive")
	}
	if cluster.MembershipEvents() != nil {
		t.Error("MembershipEvents without heartbeat not nil")
	}
}

// TestRunChaosFacade runs the orchestrated three-phase chaos workload —
// ambient loss and duplication, a healed partition, a crash recovered by
// state transfer — and requires the oracle's verdict to be clean.
func TestRunChaosFacade(t *testing.T) {
	sys := fig3System(t)
	rep, err := sys.RunChaos(ChaosOptions{
		Ops:       600,
		Seed:      17,
		Plan:      FaultPlan{Default: EdgeFault{Drop: 0.02, Dup: 0.02}},
		Partition: true, PartitionA: 0, PartitionB: 2,
		PartitionHeal: time.Millisecond,
		Crash:         true, CrashReplica: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("chaos run not Ok: %v", rep.Violations)
	}
	if rep.Messages == 0 {
		t.Error("no messages sent")
	}
	if rep.Dropped == 0 && rep.Duped == 0 {
		t.Error("fault lottery injected nothing at loss=dup=0.02")
	}

	if _, err := sys.RunChaos(ChaosOptions{Crash: true, CrashReplica: 9}); err == nil {
		t.Error("out-of-range crash replica accepted")
	}
	if _, err := sys.RunChaos(ChaosOptions{Partition: true, PartitionB: -1}); err == nil {
		t.Error("out-of-range partition replica accepted")
	}
}
